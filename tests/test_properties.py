"""Property-based tests (hypothesis) for core invariants.

These target the numerical and structural invariants that must hold for
*any* input, not just the fixtures: autograd correctness under broadcasting,
operator stochasticity, homophily metric bounds, AMUD score bounds and the
idempotence of the undirected transformation.
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.amud import amud_score, guidance_score, pattern_profile_correlation
from repro.graph import DirectedGraph, row_normalized, symmetric_normalized_adjacency, to_undirected
from repro.graph.generators import DSBMConfig, directed_sbm
from repro.graph.operators import add_self_loops, directed_pattern_operators
from repro.metrics import (
    accuracy,
    adjusted_homophily,
    edge_homophily,
    label_informativeness,
    node_homophily,
)
from repro.nn import Tensor
from repro.nn import functional as F

# Keep hypothesis example counts small: every example builds matrices.
FAST = settings(max_examples=25, deadline=None)
SLOW = settings(max_examples=10, deadline=None)


# ---------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------- #
def random_digraph_strategy(max_nodes=30):
    """Strategy producing (dense adjacency, labels) pairs."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=3, max_value=max_nodes))
        density = draw(st.floats(min_value=0.05, max_value=0.5))
        seed = draw(st.integers(min_value=0, max_value=2 ** 16))
        num_classes = draw(st.integers(min_value=2, max_value=4))
        rng = np.random.default_rng(seed)
        dense = (rng.random((n, n)) < density).astype(float)
        np.fill_diagonal(dense, 0)
        labels = rng.integers(0, num_classes, size=n)
        return dense, labels

    return build()


small_floats = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=6),
    elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
)


# ---------------------------------------------------------------------- #
# Autograd invariants
# ---------------------------------------------------------------------- #
class TestAutogradProperties:
    @FAST
    @given(small_floats)
    def test_softmax_rows_sum_to_one(self, array):
        result = Tensor(array).softmax(axis=-1).numpy()
        np.testing.assert_allclose(result.sum(axis=-1), 1.0, atol=1e-9)
        assert np.all(result >= 0)

    @FAST
    @given(small_floats)
    def test_log_softmax_is_log_of_softmax(self, array):
        tensor = Tensor(array)
        np.testing.assert_allclose(
            tensor.log_softmax(axis=-1).numpy(),
            np.log(tensor.softmax(axis=-1).numpy() + 1e-300),
            atol=1e-6,
        )

    @FAST
    @given(small_floats)
    def test_sum_gradient_is_ones(self, array):
        tensor = Tensor(array, requires_grad=True)
        tensor.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones_like(array))

    @FAST
    @given(small_floats, st.floats(min_value=-3, max_value=3, allow_nan=False))
    def test_linearity_of_gradients(self, array, scale):
        a = Tensor(array, requires_grad=True)
        (a * scale).sum().backward()
        np.testing.assert_allclose(a.grad, np.full_like(array, scale))

    @FAST
    @given(small_floats)
    def test_relu_output_nonnegative(self, array):
        assert np.all(Tensor(array).relu().numpy() >= 0)

    @FAST
    @given(small_floats)
    def test_cross_entropy_nonnegative(self, array):
        labels = np.zeros(array.shape[0], dtype=np.int64)
        loss = F.cross_entropy(Tensor(array), labels)
        assert loss.item() >= -1e-9


# ---------------------------------------------------------------------- #
# Graph operator invariants
# ---------------------------------------------------------------------- #
class TestOperatorProperties:
    @FAST
    @given(random_digraph_strategy())
    def test_row_normalized_is_stochastic(self, data):
        dense, _ = data
        matrix = row_normalized(add_self_loops(sp.csr_matrix(dense)))
        np.testing.assert_allclose(np.asarray(matrix.sum(axis=1)).ravel(), 1.0, atol=1e-9)

    @FAST
    @given(random_digraph_strategy())
    def test_symmetric_normalization_spectrum_bounded(self, data):
        dense, _ = data
        symmetric = ((dense + dense.T) > 0).astype(float)
        normalized = symmetric_normalized_adjacency(sp.csr_matrix(symmetric))
        eigenvalues = np.linalg.eigvalsh(normalized.toarray())
        assert eigenvalues.max() <= 1.0 + 1e-8
        assert eigenvalues.min() >= -1.0 - 1e-8

    @FAST
    @given(random_digraph_strategy())
    def test_transpose_pattern_duality(self, data):
        dense, _ = data
        patterns = directed_pattern_operators(sp.csr_matrix(dense), order=2)
        np.testing.assert_array_equal(patterns["A"].toarray(), patterns["At"].T.toarray())
        np.testing.assert_array_equal(patterns["AAt"].toarray(), patterns["AAt"].T.toarray())
        np.testing.assert_array_equal(patterns["AtA"].toarray(), patterns["AtA"].T.toarray())

    @FAST
    @given(random_digraph_strategy())
    def test_undirected_transform_idempotent(self, data):
        dense, labels = data
        graph = DirectedGraph(sp.csr_matrix(dense), np.zeros((dense.shape[0], 2)), labels)
        once = to_undirected(graph)
        twice = to_undirected(once)
        np.testing.assert_array_equal(once.adjacency.toarray(), twice.adjacency.toarray())


# ---------------------------------------------------------------------- #
# Metric invariants
# ---------------------------------------------------------------------- #
class TestMetricProperties:
    @FAST
    @given(random_digraph_strategy())
    def test_homophily_metrics_bounded(self, data):
        dense, labels = data
        graph = DirectedGraph(sp.csr_matrix(dense), np.zeros((dense.shape[0], 2)), labels)
        assert 0.0 <= edge_homophily(graph) <= 1.0
        assert 0.0 <= node_homophily(graph) <= 1.0
        assert -1.0 <= adjusted_homophily(graph) <= 1.0
        assert label_informativeness(graph) <= 1.0 + 1e-9

    @FAST
    @given(random_digraph_strategy())
    def test_pattern_correlation_bounded(self, data):
        dense, labels = data
        correlation = pattern_profile_correlation(sp.csr_matrix(dense), labels)
        assert -1.0 <= correlation <= 1.0

    @FAST
    @given(
        hnp.arrays(
            dtype=np.int64,
            shape=st.integers(min_value=1, max_value=50),
            elements=st.integers(min_value=0, max_value=3),
        )
    )
    def test_accuracy_bounded_and_reflexive(self, labels):
        assert accuracy(labels, labels) == 1.0
        shuffled = np.roll(labels, 1)
        assert 0.0 <= accuracy(shuffled, labels) <= 1.0

    @FAST
    @given(
        st.dictionaries(
            keys=st.sampled_from(["A", "At", "AA", "AtAt", "AAt", "AtA"]),
            values=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=2,
            max_size=6,
        )
    )
    def test_guidance_score_nonnegative(self, r_squared):
        assert guidance_score(r_squared) >= 0.0


# ---------------------------------------------------------------------- #
# AMUD end-to-end invariants on generated graphs
# ---------------------------------------------------------------------- #
class TestAmudProperties:
    @SLOW
    @given(
        st.integers(min_value=0, max_value=1000),
        st.floats(min_value=0.1, max_value=0.9),
    )
    def test_amud_score_nonnegative_on_generated_graphs(self, seed, homophily):
        config = DSBMConfig(
            num_nodes=120,
            num_classes=3,
            avg_degree=4,
            feature_dim=4,
            homophily=homophily,
            directional_asymmetry=0.5,
            name="hypothesis",
        )
        graph = directed_sbm(config, seed=seed)
        assert amud_score(graph) >= 0.0

    @SLOW
    @given(st.integers(min_value=0, max_value=1000))
    def test_undirected_graph_scores_below_directed_counterpart(self, seed):
        """Undirecting a strongly directional graph must not raise its score."""
        config = DSBMConfig(
            num_nodes=150,
            num_classes=3,
            avg_degree=5,
            feature_dim=4,
            homophily=0.15,
            directional_asymmetry=0.9,
            name="hypothesis",
        )
        graph = directed_sbm(config, seed=seed)
        assert amud_score(to_undirected(graph)) <= amud_score(graph) + 1e-9
