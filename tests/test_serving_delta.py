"""Live graph updates through the serving stack, and the exception fan-out fix."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.graph import DirectedGraph, GraphDelta, from_edge_list
from repro.models.base import NodeClassifier
from repro.models.mlp import MLPClassifier
from repro.models.sgc import SGC
from repro.serving import (
    GraphSwapTicket,
    InferenceServer,
    LRUCache,
    OperatorCache,
    ShardRouter,
    TraceCache,
    UnknownShard,
)
from repro.serving.fingerprint import preprocess_key


def build_graph(seed: int = 0, n: int = 90, name: str = "live") -> DirectedGraph:
    rng = np.random.default_rng(seed)
    return from_edge_list(
        rng.integers(0, n, size=(5 * n, 2)),
        n,
        rng.normal(size=(n, 8)),
        rng.integers(0, 3, size=n),
        train_mask=rng.random(n) < 0.5,
        val_mask=rng.random(n) < 0.25,
        test_mask=rng.random(n) < 0.25,
        name=name,
    )


class TestLRUDiscard:
    def test_discard_and_discard_where(self):
        cache = LRUCache(capacity=8)
        for index in range(4):
            cache.put(f"key-{index}", index)
        assert cache.discard("key-1") is True
        assert cache.discard("key-1") is False
        assert cache.discard_where(lambda key: key.endswith(("2", "3"))) == 2
        assert len(cache) == 1 and "key-0" in cache

    def test_operator_cache_invalidate_graph_is_surgical(self):
        cache = OperatorCache()
        graph_a, graph_b = build_graph(1), build_graph(2)
        model = MLPClassifier(8, 3)
        cache.preprocess(model, graph_a)
        cache.preprocess(model, graph_b)
        assert cache.invalidate_graph(graph_a.fingerprint()) == 1
        assert cache.lookup(model, graph_b) is not None
        assert cache.lookup(model, graph_a) is None

    def test_trace_cache_invalidate_graph(self):
        trace_cache = TraceCache()
        graph_a, graph_b = build_graph(3), build_graph(4)
        model = SGC(8, 3, num_steps=1)
        trace_cache.compile_and_store(model, graph_a)
        trace_cache.compile_and_store(model, graph_b)
        assert trace_cache.invalidate_graph(graph_a.fingerprint()) == 1
        assert trace_cache.get(preprocess_key(model, graph_b)) is not None
        assert trace_cache.get(preprocess_key(model, graph_a)) is None


class TestSwapGraph:
    def test_running_swap_matches_fresh_server(self):
        graph = build_graph(5)
        delta = GraphDelta(
            add_edges=[[0, 7], [3, 1]], set_features={2: np.ones(8)}
        )
        mutated = graph.apply_delta(delta, validate=True)
        model = SGC(8, 3, num_steps=2)
        server = InferenceServer(model, graph, max_wait_ms=0.5)
        server.warm()
        with server:
            before = server.predict(timeout=10)
            swap = server.swap_graph(delta, timeout=10)
            after = server.predict(timeout=10)
        assert swap.in_place is True  # SGC patches its propagation in place
        assert swap.old_fingerprint == graph.fingerprint()
        assert swap.new_fingerprint == mutated.fingerprint()
        reference = InferenceServer(SGC(8, 3, num_steps=2), mutated, max_wait_ms=0.5)
        reference.warm()
        with reference:
            expected = reference.predict(timeout=10)
        assert np.array_equal(after, expected)
        assert before.shape == after.shape

    def test_swap_invalidates_only_old_fingerprint(self):
        graph = build_graph(6)
        other = build_graph(7, name="other")
        model = MLPClassifier(8, 3)
        server = InferenceServer(model, graph, max_wait_ms=0.5, compile="eager")
        server.warm()
        server.warm(other)
        with server:
            server.predict([0, 1], timeout=10)
            server.predict([0], graph=other, timeout=10)
            swap = server.swap_graph(GraphDelta(set_labels={0: 1}), timeout=10)
        assert swap.invalidated["operator"] == 1
        assert swap.invalidated["logits"] == 1
        # The untouched graph and the freshly-warmed successor both survive.
        assert server.cache.lookup(model, other) is not None
        assert server.cache.lookup(model, server.graph) is not None
        assert server.cache.lookup(model, graph) is None

    def test_inline_swap_on_stopped_server(self):
        graph = build_graph(8)
        server = InferenceServer(MLPClassifier(8, 3), graph, compile="eager")
        swap = server.swap_graph(GraphDelta(add_edges=[[1, 2]]))
        assert swap.done()
        assert server.graph.fingerprint() == swap.new_fingerprint
        assert isinstance(swap, GraphSwapTicket)

    def test_empty_delta_keeps_cache_entry(self):
        graph = build_graph(9)
        model = MLPClassifier(8, 3)
        server = InferenceServer(model, graph, compile="eager")
        server.warm()
        swap = server.swap_graph(GraphDelta())
        assert swap.new_fingerprint == swap.old_fingerprint
        assert swap.invalidated == {}
        assert server.cache.lookup(model, server.graph) is not None

    def test_stop_fails_pending_swap(self):
        graph = build_graph(10)
        server = InferenceServer(MLPClassifier(8, 3), graph, compile="eager")
        server.start()
        server.stop()
        # A swap sneaking in after stop applies inline (not running).
        swap = server.swap_graph(GraphDelta(add_edges=[[0, 1]]), block=False)
        assert swap.done() and swap.result(1) is server.graph

    def test_failing_delta_resolves_ticket(self):
        graph = build_graph(11)
        server = InferenceServer(MLPClassifier(8, 3), graph, compile="eager")
        with server:
            with pytest.raises(ValueError, match="out of range"):
                server.swap_graph(GraphDelta(add_edges=[[0, 10_000]]), timeout=10)
            # Server keeps serving after a rejected delta.
            assert server.predict([0], timeout=10).shape == (1,)


class TestExceptionFanOut:
    def test_each_ticket_gets_its_own_exception(self):
        class ExplodingModel(NodeClassifier):
            def __init__(self):
                super().__init__(num_features=8, num_classes=3)

            def preprocess(self, graph):
                raise RuntimeError("preprocess exploded")

            def forward(self, cache):  # pragma: no cover - never reached
                raise AssertionError

        graph = build_graph(12)
        server = InferenceServer(
            ExplodingModel(), graph, max_wait_ms=20.0, compile="eager"
        )
        with server:
            first = server.submit([0])
            second = server.submit([1])
            errors = []
            for ticket in (first, second):
                try:
                    ticket.result(timeout=10)
                except RuntimeError as error:
                    errors.append(error)
        assert len(errors) == 2
        assert errors[0] is not errors[1]  # no shared-traceback race
        cause = errors[0].__cause__
        assert cause is not None and cause is errors[1].__cause__
        assert "preprocess exploded" in str(errors[0])


class TestRouterUpdateShard:
    def test_untouched_shard_cache_survives(self):
        graph_a = build_graph(13, name="alpha")
        graph_b = build_graph(14, name="beta")
        model_a = SGC(8, 3, num_steps=2)
        model_b = SGC(8, 3, num_steps=2)
        router = ShardRouter(max_wait_ms=0.5, compile="eager")
        router.add_shard(model_a, graph_a)
        router.add_shard(model_b, graph_b)
        with router:
            router.predict([0], shard="alpha", timeout=10)
            router.predict([0], shard="beta", timeout=10)
            swap = router.update_shard("alpha", GraphDelta(add_edges=[[0, 2]]))
            assert swap.invalidated["operator"] == 1
            # beta's preprocess entry is untouched by alpha's update.
            assert router.operator_cache.lookup(model_b, graph_b) is not None
            assert router.operator_cache.lookup(model_a, graph_a) is None
            # Fingerprint routing follows the mutated graph.
            new_graph = swap.result(1)
            assert router.resolve(graph=new_graph).name == "alpha"
            with pytest.raises(UnknownShard):
                router.resolve(graph=graph_a)

    def test_unknown_shard_raises(self):
        router = ShardRouter()
        with pytest.raises(UnknownShard):
            router.update_shard("missing", GraphDelta())

    def test_zero_errors_under_concurrent_writer(self):
        """Satellite: the router serves 0 errors while a writer mutates."""
        graph = build_graph(15, n=150, name="churn")
        model = SGC(8, 3, num_steps=2)
        router = ShardRouter(max_wait_ms=0.5, compile="eager")
        router.add_shard(model, graph)
        request_errors = []
        swap_records = []

        def client(seed: int) -> None:
            rng = np.random.default_rng(seed)
            for _ in range(40):
                ids = rng.choice(150, size=8, replace=False)
                try:
                    router.submit(node_ids=ids, shard="churn").result(timeout=30)
                except Exception as error:  # pragma: no cover - the assertion
                    request_errors.append(error)

        def writer() -> None:
            rng = np.random.default_rng(99)
            for index in range(15):
                u, v = int(rng.integers(150)), int(rng.integers(150))
                delta = (
                    GraphDelta(add_edges=[[u, v]])
                    if index % 2 == 0
                    else GraphDelta(remove_edges=[[u, v]])
                )
                swap_records.append(router.update_shard("churn", delta, timeout=30))

        with router:
            threads = [threading.Thread(target=client, args=(seed,)) for seed in range(3)]
            writer_thread = threading.Thread(target=writer)
            for thread in threads:
                thread.start()
            writer_thread.start()
            for thread in threads:
                thread.join()
            writer_thread.join()

        assert request_errors == []
        assert len(swap_records) == 15
        # Every topology-changing swap patched the SGC cache in place.
        changed = [swap for swap in swap_records if swap.new_fingerprint != swap.old_fingerprint]
        assert changed and all(swap.in_place for swap in changed)
        # The router's route table tracks the final fingerprint.
        final = router.shards()[0]
        assert final.fingerprint == final.engine.graph.fingerprint()
