"""Tests for the observability layer: histograms, trace spans, stats."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.obs import (
    BUCKET_BOUNDS_MS,
    BUCKET_COUNT,
    HistogramStats,
    LatencyHistogram,
    RequestTrace,
    Stats,
    StatsSource,
    TraceBuffer,
    bucket_index,
)


class TestBucketLayout:
    def test_bounds_are_strictly_increasing(self):
        assert all(
            low < high for low, high in zip(BUCKET_BOUNDS_MS, BUCKET_BOUNDS_MS[1:])
        )

    def test_spans_microseconds_to_minutes(self):
        assert BUCKET_BOUNDS_MS[0] == pytest.approx(1e-3)  # 1 µs
        assert BUCKET_BOUNDS_MS[-1] == pytest.approx(1e5)  # 100 s

    def test_bucket_count_includes_overflow(self):
        assert BUCKET_COUNT == len(BUCKET_BOUNDS_MS) + 1

    def test_bucket_index_brackets_the_value(self):
        for value in (1e-4, 1e-3, 0.5, 1.0, 17.3, 999.0, 1e5, 1e7):
            index = bucket_index(value)
            if index < len(BUCKET_BOUNDS_MS):
                assert value <= BUCKET_BOUNDS_MS[index]
            if index > 0:
                assert value > BUCKET_BOUNDS_MS[index - 1]

    def test_overflow_lands_in_last_bucket(self):
        assert bucket_index(float("inf")) == BUCKET_COUNT - 1
        assert bucket_index(10 ** 9) == BUCKET_COUNT - 1


class TestLatencyHistogram:
    def test_empty_stats_are_zero(self):
        stats = LatencyHistogram().stats()
        assert stats.count == 0
        assert stats.mean_ms == 0.0
        assert stats.p50_ms == 0.0
        assert stats.p99_ms == 0.0
        assert stats.max_ms == 0.0

    def test_record_and_quantiles(self):
        histogram = LatencyHistogram()
        for value in range(1, 101):  # 1..100 ms
            histogram.record(float(value))
        stats = histogram.stats()
        assert stats.count == 100
        assert stats.mean_ms == pytest.approx(50.5)
        assert stats.min_ms == pytest.approx(1.0)
        assert stats.max_ms == pytest.approx(100.0)
        # Log-bucketed quantiles are interpolated: ~26% bucket width caps
        # the relative error far below that in practice.
        assert stats.p50_ms == pytest.approx(50.0, rel=0.15)
        assert stats.p95_ms == pytest.approx(95.0, rel=0.15)
        assert stats.p99_ms == pytest.approx(99.0, rel=0.15)
        assert stats.p50_ms <= stats.p95_ms <= stats.p99_ms

    def test_quantiles_clamped_to_observed_range(self):
        histogram = LatencyHistogram()
        histogram.record(5.0)
        stats = histogram.stats()
        assert stats.p50_ms == pytest.approx(5.0)
        assert stats.p99_ms == pytest.approx(5.0)

    def test_record_seconds_converts(self):
        histogram = LatencyHistogram()
        histogram.record_seconds(0.25)
        assert histogram.stats().max_ms == pytest.approx(250.0)

    def test_memory_is_constant(self):
        histogram = LatencyHistogram()
        for value in np.random.default_rng(0).uniform(0.01, 1000.0, size=10_000):
            histogram.record(float(value))
        stats = histogram.stats()
        assert stats.count == 10_000
        assert len(stats.counts) == BUCKET_COUNT  # bounded, not a sample list

    def test_merged_equals_union(self):
        left, right = LatencyHistogram(), LatencyHistogram()
        union = LatencyHistogram()
        rng = np.random.default_rng(1)
        for value in rng.uniform(0.1, 100.0, size=500):
            left.record(float(value))
            union.record(float(value))
        for value in rng.uniform(10.0, 5000.0, size=300):
            right.record(float(value))
            union.record(float(value))
        merged = HistogramStats.merged([left.stats(), right.stats()])
        expected = union.stats()
        assert merged.count == expected.count
        assert merged.sum_ms == pytest.approx(expected.sum_ms)
        assert merged.min_ms == pytest.approx(expected.min_ms)
        assert merged.max_ms == pytest.approx(expected.max_ms)
        assert merged.counts == expected.counts
        assert merged.p99_ms == pytest.approx(expected.p99_ms)

    def test_merged_of_nothing_is_empty(self):
        assert HistogramStats.merged([]).count == 0

    def test_concurrent_records_are_not_lost(self):
        histogram = LatencyHistogram()

        def hammer():
            for _ in range(1000):
                histogram.record(1.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.stats().count == 8000

    def test_snapshot_matches_stats_protocol(self):
        histogram = LatencyHistogram()
        histogram.record(3.0)
        assert histogram.snapshot() == histogram.stats().as_dict()


class TestStatsProtocolNesting:
    def test_histogram_embeds_in_a_stats_dataclass(self):
        @dataclass
        class Wrapped(Stats):
            derived = ("p99_ms",)

            requests: int = 0
            latency: HistogramStats = field(default_factory=HistogramStats)

            @property
            def p99_ms(self) -> float:
                return self.latency.p99_ms

        histogram = LatencyHistogram()
        histogram.record(4.0)
        snapshot = Wrapped(requests=1, latency=histogram.stats()).as_dict()
        assert snapshot["requests"] == 1
        assert snapshot["latency"]["count"] == 1
        assert snapshot["p99_ms"] == pytest.approx(4.0, rel=0.01)
        # Floats are rounded like every other Stats snapshot.
        assert isinstance(snapshot["latency"]["counts"], list)

    def test_source_snapshot_roundtrip(self):
        class Source(StatsSource):
            def stats(self):
                histogram = LatencyHistogram()
                histogram.record(2.0)
                return histogram.stats()

        assert Source().snapshot() == Source().stats().as_dict()


class TestRequestTrace:
    def test_spans_sum_to_total(self):
        trace = RequestTrace(started_at=100.0)
        trace.mark("queue", 100.010)
        trace.mark("cache", 100.012)
        trace.mark("forward", 100.050)
        trace.mark("deliver", 100.051)
        spans = trace.spans()
        assert list(spans) == ["queue", "cache", "forward", "deliver"]
        assert sum(spans.values()) == pytest.approx(trace.total_ms)
        assert spans["forward"] == pytest.approx(38.0, rel=1e-6)

    def test_duplicate_stage_folds(self):
        trace = RequestTrace(started_at=0.0)
        trace.mark("queue", 0.001)
        trace.mark("queue", 0.003)
        assert trace.spans() == {"queue": pytest.approx(3.0)}

    def test_as_dict_spans_sum_to_total_after_rounding(self):
        trace = RequestTrace(started_at=0.0)
        trace.mark("queue", 0.0101010101)
        trace.mark("deliver", 0.0202020202)
        payload = trace.as_dict()
        assert sum(payload["spans"].values()) == pytest.approx(
            payload["total_ms"], abs=1e-3
        )

    def test_annotations_ride_along(self):
        trace = RequestTrace()
        trace.annotate("nodes", 7)
        trace.mark("deliver")
        assert trace.as_dict()["meta"] == {"nodes": 7}


class TestTraceBuffer:
    def test_bounded_and_most_recent_first(self):
        buffer = TraceBuffer(capacity=3)
        for index in range(5):
            buffer.append({"id": index})
        assert len(buffer) == 3
        assert [entry["id"] for entry in buffer.snapshot()] == [4, 3, 2]
        assert [entry["id"] for entry in buffer.snapshot(limit=2)] == [4, 3]

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)

    def test_clear(self):
        buffer = TraceBuffer()
        buffer.append({"id": 1})
        buffer.clear()
        assert buffer.snapshot() == []


class TestEngineIntegration:
    """The engine populates histograms and traces end to end."""

    @pytest.fixture(scope="class")
    def served(self, homophilous_graph):
        from repro.models.registry import create_model
        from repro.serving import InferenceServer
        from repro.training import Trainer

        model = create_model("MLP", homophilous_graph, seed=0, hidden=8)
        Trainer(epochs=2, patience=5).fit(model, homophilous_graph)
        server = InferenceServer(model, homophilous_graph, max_wait_ms=0.0)
        with server:
            for _ in range(5):
                server.predict(node_ids=[0, 1])
            stats = server.stats()
            traces = server.recent_traces()
        return stats, traces

    def test_latency_histogram_populated(self, served):
        stats, _ = served
        assert stats.latency.count == 5
        assert stats.p50_latency_ms > 0
        assert stats.p50_latency_ms <= stats.p95_latency_ms <= stats.p99_latency_ms
        # The legacy scalar fields now derive from the histogram.
        assert stats.mean_latency_ms == pytest.approx(stats.latency.mean_ms)
        assert stats.max_latency_ms == pytest.approx(stats.latency.max_ms)

    def test_snapshot_nests_the_histogram(self, served):
        stats, _ = served
        snapshot = stats.as_dict()
        assert snapshot["latency"]["count"] == 5
        assert snapshot["p50_latency_ms"] == snapshot["latency"]["p50_ms"]

    def test_traces_cover_every_stage(self, served):
        _, traces = served
        assert len(traces) == 5
        newest = traces[0]
        assert set(newest["spans"]) == {"queue", "cache", "forward", "deliver"}
        assert sum(newest["spans"].values()) == pytest.approx(
            newest["total_ms"], abs=1e-3
        )
        assert newest["meta"]["outcome"] == "ok"
        assert newest["meta"]["nodes"] == 2
        assert newest["meta"]["path"] in ("memoised", "compiled", "eager")

    def test_operator_cache_records_preprocess_latency(self, homophilous_graph):
        from repro.models.registry import create_model
        from repro.serving import OperatorCache

        model = create_model("MLP", homophilous_graph, seed=0, hidden=8)
        cache = OperatorCache()
        cache.preprocess(model, homophilous_graph)
        cache.preprocess(model, homophilous_graph)
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.preprocess_latency.count == 2
        assert cache.snapshot()["preprocess_latency"]["count"] == 2
