"""Tests for the baseline model zoo: construction, forward shapes, training."""

import numpy as np
import pytest

from repro.models import (
    A2DUG,
    AeroGNN,
    BernNet,
    DGCN,
    DiGCN,
    DIMPA,
    DirGNN,
    GCN,
    GCNII,
    GloGNN,
    GPRGNN,
    GRAND,
    JacobiConv,
    LINKX,
    MagNet,
    MLPClassifier,
    NSTE,
    SGC,
    available_models,
    create_model,
    directed_models,
    get_spec,
    undirected_models,
)
from repro.models.base import NodeClassifier
from repro.training import Trainer

ALL_MODEL_CLASSES = [
    MLPClassifier,
    GCN,
    SGC,
    GCNII,
    GPRGNN,
    GRAND,
    LINKX,
    GloGNN,
    AeroGNN,
    BernNet,
    JacobiConv,
    DGCN,
    DirGNN,
    NSTE,
    DIMPA,
    A2DUG,
    DiGCN,
    MagNet,
]


class TestRegistry:
    def test_all_paper_baselines_registered(self):
        names = {name.lower() for name in available_models()}
        expected = {
            "mlp", "gcn", "sgc", "gcnii", "grand", "linkx", "glognn", "aerognn",
            "gprgnn", "bernnet", "jacobiconv", "dgcn", "nste", "dimpa", "dirgnn",
            "a2dug", "digcn", "magnet", "adpa",
        }
        assert expected <= names

    def test_directed_undirected_partition(self):
        directed = set(directed_models())
        undirected = set(undirected_models())
        assert not directed & undirected
        assert "DirGNN" in directed
        assert "GCN" in undirected

    def test_get_spec_case_insensitive(self):
        assert get_spec("gcn").name == "GCN"
        assert get_spec("GCN").category == "undirected-spatial"

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            get_spec("not-a-model")

    def test_create_model_infers_dimensions(self, heterophilous_graph):
        model = create_model("GCN", heterophilous_graph, hidden=8)
        assert isinstance(model, NodeClassifier)
        assert model.num_features == heterophilous_graph.num_features
        assert model.num_classes == heterophilous_graph.num_classes

    def test_create_adpa_through_registry(self, heterophilous_graph):
        model = create_model("ADPA", heterophilous_graph, hidden=8, num_steps=2)
        assert model.num_classes == heterophilous_graph.num_classes


def _build(model_class, graph, **extra):
    """Construct a model, passing ``hidden`` only to models that take it."""
    kwargs = {"seed": 0, **extra}
    if model_class is not SGC:
        kwargs.setdefault("hidden", 8)
    return model_class.from_graph(graph, **kwargs)


class TestForwardShapes:
    @pytest.mark.parametrize("model_class", ALL_MODEL_CLASSES)
    def test_forward_produces_logits(self, model_class, heterophilous_graph):
        model = _build(model_class, heterophilous_graph)
        cache = model.preprocess(heterophilous_graph)
        logits = model.forward(cache)
        assert logits.shape == (
            heterophilous_graph.num_nodes,
            heterophilous_graph.num_classes,
        )
        assert np.all(np.isfinite(logits.numpy()))

    @pytest.mark.parametrize("model_class", ALL_MODEL_CLASSES)
    def test_gradients_reach_every_parameter(self, model_class, heterophilous_graph):
        model = _build(model_class, heterophilous_graph)
        cache = model.preprocess(heterophilous_graph)
        model.forward(cache).sum().backward()
        grads = [param.grad is not None for param in model.parameters()]
        assert len(grads) > 0
        # At least 80% of parameters receive gradient (attention gates may be
        # dead for specific inputs, but the bulk of the model must train).
        assert np.mean(grads) > 0.8

    @pytest.mark.parametrize("model_class", ALL_MODEL_CLASSES)
    def test_predict_api(self, model_class, heterophilous_graph):
        model = _build(model_class, heterophilous_graph)
        predictions = model.predict(heterophilous_graph)
        assert predictions.shape == (heterophilous_graph.num_nodes,)

    def test_base_class_contract_enforced(self):
        with pytest.raises(ValueError):
            MLPClassifier(num_features=4, num_classes=1)


class TestConstructorValidation:
    def test_gcn_invalid_layers(self):
        with pytest.raises(ValueError):
            GCN(num_features=4, num_classes=2, num_layers=0)

    def test_sgc_invalid_steps(self):
        with pytest.raises(ValueError):
            SGC(num_features=4, num_classes=2, num_steps=-1)

    def test_dirgnn_invalid_alpha(self):
        with pytest.raises(ValueError):
            DirGNN(num_features=4, num_classes=2, alpha=2.0)

    def test_magnet_invalid_q(self):
        with pytest.raises(ValueError):
            MagNet(num_features=4, num_classes=2, q=0.9)

    def test_bernnet_invalid_order(self):
        with pytest.raises(ValueError):
            BernNet(num_features=4, num_classes=2, poly_order=0)

    def test_grand_invalid_tau(self):
        with pytest.raises(ValueError):
            GRAND(num_features=4, num_classes=2, tau=0.0)


class TestTrainingBehaviour:
    """Each family is trained briefly and must beat the majority-class baseline."""

    def _majority(self, graph):
        return graph.label_distribution().max()

    @pytest.mark.parametrize("name", ["MLP", "GCN", "SGC", "GPRGNN", "LINKX"])
    def test_undirected_models_learn_homophilous(self, name, homophilous_graph, fast_trainer):
        from repro.graph import to_undirected

        graph = to_undirected(homophilous_graph)
        kwargs = {"seed": 0} if name == "SGC" else {"hidden": 16, "seed": 0}
        model = create_model(name, graph, **kwargs)
        result = fast_trainer.fit(model, graph)
        assert result.test_accuracy > self._majority(graph) + 0.05

    @pytest.mark.parametrize("name", ["DirGNN", "DGCN", "MagNet", "DIMPA"])
    def test_directed_models_learn_heterophilous(self, name, heterophilous_graph, fast_trainer):
        model = create_model(name, heterophilous_graph, hidden=16, seed=0)
        result = fast_trainer.fit(model, heterophilous_graph)
        assert result.test_accuracy > self._majority(heterophilous_graph) + 0.05

    def test_gcn_undirects_its_input(self, heterophilous_graph):
        """Undirected models symmetrise the adjacency inside preprocess."""
        model = GCN.from_graph(heterophilous_graph, hidden=8, seed=0)
        cache = model.preprocess(heterophilous_graph)
        adjacency = cache["adj"]
        difference = adjacency - adjacency.T
        assert np.abs(difference.toarray()).max() < 1e-10

    def test_dirgnn_uses_both_directions(self, heterophilous_graph):
        model = DirGNN.from_graph(heterophilous_graph, hidden=8, seed=0)
        cache = model.preprocess(heterophilous_graph)
        assert (cache["out_adj"] != cache["in_adj"]).nnz > 0

    def test_sgc_zero_steps_equals_feature_model(self, heterophilous_graph):
        model = SGC.from_graph(heterophilous_graph, num_steps=0, seed=0)
        cache = model.preprocess(heterophilous_graph)
        np.testing.assert_allclose(cache["x"].numpy(), heterophilous_graph.features)

    def test_directed_flag_consistency(self):
        assert DirGNN.directed and MagNet.directed and DGCN.directed
        assert not GCN.directed and not SGC.directed and not LINKX.directed
