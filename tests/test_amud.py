"""Tests for the AMUD correlation machinery and guidance decision (paper Sec. III)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.amud import (
    amud_decide,
    amud_score,
    apply_amud,
    guidance_score,
    pattern_correlations,
    pattern_profile_correlation,
    pattern_r_squared,
)
from repro.amud.guidance import _pattern_order
from repro.graph import DirectedGraph, to_undirected
from repro.graph.generators import DSBMConfig, directed_sbm


def _dense_correlation(pattern, profiles):
    """Brute-force Pearson correlation over all ordered off-diagonal pairs."""
    pattern = np.asarray(pattern.todense())
    n = pattern.shape[0]
    xs, zs = [], []
    for u in range(n):
        for v in range(n):
            if u == v:
                continue
            xs.append(pattern[u, v])
            zs.append(1.0 if profiles[u] == profiles[v] else 0.0)
    xs, zs = np.asarray(xs), np.asarray(zs)
    if xs.std() == 0 or zs.std() == 0:
        return 0.0
    return float(np.corrcoef(xs, zs)[0, 1])


class TestPatternProfileCorrelation:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        dense = (rng.random((12, 12)) < 0.3).astype(float)
        np.fill_diagonal(dense, 0)
        pattern = sp.csr_matrix(dense)
        profiles = rng.integers(0, 3, size=12)
        fast = pattern_profile_correlation(pattern, profiles)
        slow = _dense_correlation(pattern, profiles)
        assert fast == pytest.approx(slow, abs=1e-10)

    def test_perfectly_aligned_pattern_positive(self):
        # Pattern connects exactly the same-class pairs.
        labels = np.array([0, 0, 1, 1])
        dense = np.zeros((4, 4))
        dense[0, 1] = dense[1, 0] = dense[2, 3] = dense[3, 2] = 1.0
        assert pattern_profile_correlation(sp.csr_matrix(dense), labels) > 0.9

    def test_anti_aligned_pattern_negative(self):
        labels = np.array([0, 0, 1, 1])
        dense = np.zeros((4, 4))
        dense[0, 2] = dense[2, 0] = dense[1, 3] = dense[3, 1] = 1.0
        assert pattern_profile_correlation(sp.csr_matrix(dense), labels) < -0.4

    def test_empty_pattern_is_zero(self):
        labels = np.array([0, 1, 0, 1])
        assert pattern_profile_correlation(sp.csr_matrix((4, 4)), labels) == 0.0

    def test_uniform_profile_is_zero(self):
        dense = np.zeros((4, 4))
        dense[0, 1] = 1.0
        assert pattern_profile_correlation(sp.csr_matrix(dense), np.zeros(4, dtype=int)) == 0.0

    def test_single_node_graph(self):
        assert pattern_profile_correlation(sp.csr_matrix((1, 1)), np.array([0])) == 0.0

    def test_bounded_in_minus_one_one(self, heterophilous_graph):
        correlations = pattern_correlations(heterophilous_graph)
        for value in correlations.values():
            assert -1.0 <= value <= 1.0


class TestPatternCorrelations:
    def test_returns_all_second_order_patterns(self, heterophilous_graph):
        correlations = pattern_correlations(heterophilous_graph, order=2)
        assert set(correlations) == {"A", "At", "AA", "AtAt", "AAt", "AtA"}

    def test_r_squared_is_square(self, heterophilous_graph):
        correlations = pattern_correlations(heterophilous_graph)
        r_squared = pattern_r_squared(heterophilous_graph)
        for name in correlations:
            assert r_squared[name] == pytest.approx(correlations[name] ** 2)

    def test_feature_profile_option_runs(self, homophilous_graph):
        correlations = pattern_correlations(homophilous_graph, profile="features")
        assert len(correlations) == 6

    def test_explicit_profile_array(self, homophilous_graph):
        correlations = pattern_correlations(homophilous_graph, profile=homophilous_graph.labels)
        assert correlations == pattern_correlations(homophilous_graph, profile="labels")

    def test_unknown_profile_rejected(self, homophilous_graph):
        with pytest.raises(ValueError):
            pattern_correlations(homophilous_graph, profile="bogus")

    def test_directional_structure_shows_in_composites(self, heterophilous_graph):
        """On a cyclic heterophilous digraph AAᵀ/AᵀA recover homophily that AA lacks."""
        correlations = pattern_correlations(heterophilous_graph)
        assert correlations["AAt"] > correlations["AA"]
        assert correlations["AtA"] > correlations["AtAt"]


class TestGuidanceScore:
    def test_pattern_order_parser(self):
        assert _pattern_order("A") == 1
        assert _pattern_order("At") == 1
        assert _pattern_order("AAt") == 2
        assert _pattern_order("AtAtA") == 3

    def test_uniform_r_squared_gives_zero(self):
        values = {"A": 0.3, "At": 0.3, "AA": 0.3, "AtAt": 0.3, "AAt": 0.3, "AtA": 0.3}
        assert guidance_score(values) == 0.0

    def test_spread_increases_score(self):
        spread = {"A": 0.1, "At": 0.1, "AA": 0.0, "AtAt": 0.0, "AAt": 0.3, "AtA": 0.3}
        uniform = {"A": 0.1, "At": 0.1, "AA": 0.29, "AtAt": 0.29, "AAt": 0.3, "AtA": 0.3}
        assert guidance_score(spread) > guidance_score(uniform)

    def test_all_zero_r_squared(self):
        assert guidance_score({"A": 0.0, "At": 0.0}) == 0.0

    def test_single_value(self):
        assert guidance_score({"A": 0.5}) == 0.0

    def test_scale_invariance(self):
        """α = 1/max makes the score invariant to uniform rescaling of R²."""
        base = {"A": 0.02, "At": 0.02, "AA": 0.01, "AtAt": 0.01, "AAt": 0.05, "AtA": 0.05}
        scaled = {name: value * 10 for name, value in base.items()}
        assert guidance_score(base) == pytest.approx(guidance_score(scaled))


class TestAmudDecision:
    def test_heterophilous_directed_graph_keeps_direction(self, heterophilous_graph):
        decision = amud_decide(heterophilous_graph)
        assert decision.score > 0.5
        assert decision.keep_directed
        assert decision.modeling == "directed"

    def test_homophilous_graph_goes_undirected(self, homophilous_graph):
        decision = amud_decide(homophilous_graph)
        assert decision.score < 0.5
        assert not decision.keep_directed
        assert decision.modeling == "undirected"

    def test_amud_score_matches_decision_score(self, homophilous_graph):
        assert amud_score(homophilous_graph) == pytest.approx(amud_decide(homophilous_graph).score)

    def test_threshold_controls_decision(self, heterophilous_graph):
        score = amud_score(heterophilous_graph)
        decision = amud_decide(heterophilous_graph, threshold=score + 0.1)
        assert not decision.keep_directed

    def test_already_undirected_graph_never_kept_directed(self, homophilous_graph):
        undirected = to_undirected(homophilous_graph)
        decision = amud_decide(undirected, threshold=0.0)
        assert not decision.keep_directed

    def test_apply_amud_returns_directed_graph_unchanged(self, heterophilous_graph):
        modeled, decision = apply_amud(heterophilous_graph)
        assert decision.keep_directed
        assert modeled is heterophilous_graph

    def test_apply_amud_undirects_when_guided(self, homophilous_graph):
        modeled, decision = apply_amud(homophilous_graph)
        assert not decision.keep_directed
        assert not modeled.is_directed()

    def test_decision_carries_reports(self, heterophilous_graph):
        decision = amud_decide(heterophilous_graph)
        assert set(decision.r_squared) == set(decision.correlations)
        for name, value in decision.correlations.items():
            assert decision.r_squared[name] == pytest.approx(value ** 2)

    def test_asymmetry_monotonically_raises_score(self):
        """More directional structure in the generator ⇒ higher AMUD score."""
        scores = []
        for asymmetry in (0.0, 0.5, 0.95):
            config = DSBMConfig(
                num_nodes=400,
                num_classes=4,
                avg_degree=6,
                homophily=0.2,
                directional_asymmetry=asymmetry,
                feature_dim=4,
                name=f"asym-{asymmetry}",
            )
            scores.append(amud_score(directed_sbm(config, seed=0)))
        assert scores[0] < scores[1] < scores[2]
