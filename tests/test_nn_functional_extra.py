"""Additional functional-level tests: activations on tensors vs references."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


class TestActivationValues:
    def test_relu_matches_numpy(self):
        x = np.linspace(-2, 2, 11)
        np.testing.assert_allclose(F.relu(Tensor(x)).numpy(), np.maximum(x, 0))

    def test_leaky_relu_negative_slope(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_allclose(
            F.leaky_relu(Tensor(x), 0.1).numpy(), np.array([-0.2, 0.0, 3.0])
        )

    def test_sigmoid_symmetry(self):
        x = np.linspace(-4, 4, 9)
        values = F.sigmoid(Tensor(x)).numpy()
        np.testing.assert_allclose(values + values[::-1], 1.0, atol=1e-12)

    def test_tanh_matches_numpy(self):
        x = np.linspace(-2, 2, 9)
        np.testing.assert_allclose(F.tanh(Tensor(x)).numpy(), np.tanh(x))

    def test_elu_continuity_at_zero(self):
        left = F.elu(Tensor(np.array([-1e-8]))).numpy()[0]
        right = F.elu(Tensor(np.array([1e-8]))).numpy()[0]
        assert abs(left - right) < 1e-6

    def test_softmax_invariant_to_shift(self):
        x = np.random.default_rng(0).normal(size=(3, 4))
        a = F.softmax(Tensor(x)).numpy()
        b = F.softmax(Tensor(x + 100.0)).numpy()
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_log_softmax_never_positive(self):
        x = np.random.default_rng(0).normal(size=(5, 3)) * 10
        assert np.all(F.log_softmax(Tensor(x)).numpy() <= 1e-12)

    def test_accepts_raw_arrays(self):
        """Functional helpers coerce plain arrays through as_tensor."""
        out = F.relu(np.array([-1.0, 2.0]))
        assert isinstance(out, Tensor)
        np.testing.assert_allclose(out.numpy(), [0.0, 2.0])


class TestDropoutStatistics:
    def test_expected_value_preserved(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(20000))
        out = F.dropout(x, 0.3, training=True, rng=rng).numpy()
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_zero_probability_identity(self):
        x = Tensor(np.ones(10))
        assert F.dropout(x, 0.0, training=True) is x

    def test_not_training_identity(self):
        x = Tensor(np.ones(10))
        assert F.dropout(x, 0.9, training=False) is x


class TestLossEdgeCases:
    def test_nll_with_index_mask(self):
        log_probs = Tensor(np.log(np.full((4, 2), 0.5)))
        labels = np.array([0, 1, 0, 1])
        loss = F.nll_loss(log_probs, labels, mask=np.array([0, 1]))
        assert loss.item() == pytest.approx(np.log(2))

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = np.full((3, 4), -20.0)
        logits[np.arange(3), [0, 1, 2]] = 20.0
        loss = F.cross_entropy(Tensor(logits), np.array([0, 1, 2]))
        assert loss.item() < 1e-6

    def test_cross_entropy_uniform_logits_equals_log_classes(self):
        loss = F.cross_entropy(Tensor(np.zeros((5, 3))), np.zeros(5, dtype=int))
        assert loss.item() == pytest.approx(np.log(3))

    def test_binary_cross_entropy_masked(self):
        logits = Tensor(np.array([8.0, -8.0, 0.0]))
        targets = np.array([1.0, 0.0, 1.0])
        full = F.binary_cross_entropy_with_logits(logits, targets)
        masked = F.binary_cross_entropy_with_logits(logits, targets, mask=np.array([0, 1]))
        assert masked.item() < full.item()
