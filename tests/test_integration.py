"""Integration tests spanning datasets → AMUD → models → training.

These are the paper's headline claims at miniature scale:

* Proposition 1 — undirected GNNs win on AMUndirected data, directed GNNs
  win on AMDirected data;
* Proposition 2 — undirected augmentation helps directed models on
  homophilous digraphs and hurts on heterophilous directional ones;
* ADPA is competitive in both regimes.
"""

import numpy as np
import pytest

from repro.amud import amud_decide
from repro.datasets import load_dataset
from repro.graph import to_undirected
from repro.training import Trainer, run_single


@pytest.fixture(scope="module")
def trainer():
    return Trainer(epochs=60, patience=20)


@pytest.fixture(scope="module")
def chameleon():
    return load_dataset("chameleon", seed=0)


@pytest.fixture(scope="module")
def citeseer():
    return load_dataset("citeseer", seed=0)


class TestPaperPropositions:
    def test_amud_separates_the_two_benchmark_groups(self, citeseer, chameleon):
        assert amud_decide(citeseer).modeling == "undirected"
        assert amud_decide(chameleon).modeling == "directed"

    def test_proposition1_directed_gnn_wins_on_amdirected(self, chameleon, trainer):
        """On a heterophilous directional digraph DirGNN must beat GCN clearly."""
        gcn = run_single("GCN", to_undirected(chameleon), seed=0, trainer=trainer)
        dirgnn = run_single("DirGNN", chameleon, seed=0, trainer=trainer)
        assert dirgnn.test_accuracy > gcn.test_accuracy + 0.03

    def test_proposition1_undirected_gnn_wins_on_amundirected(self, citeseer, trainer):
        """On a homophilous graph the undirected model must be at least on par."""
        gcn = run_single("GCN", to_undirected(citeseer), seed=0, trainer=trainer)
        dirgnn = run_single("DirGNN", citeseer, seed=0, trainer=trainer)
        assert gcn.test_accuracy >= dirgnn.test_accuracy - 0.02

    def test_proposition2_undirected_augmentation_hurts_directional_data(self, chameleon, trainer):
        """Feeding the undirected transform to a directed GNN loses accuracy (O2)."""
        directed_input = run_single("DirGNN", chameleon, seed=0, trainer=trainer)
        undirected_input = run_single("DirGNN", to_undirected(chameleon), seed=0, trainer=trainer)
        assert directed_input.test_accuracy > undirected_input.test_accuracy

    def test_adpa_competitive_on_amdirected(self, chameleon, trainer):
        adpa = run_single(
            "ADPA", chameleon, seed=0, trainer=trainer, model_kwargs={"num_steps": 2, "hidden": 32}
        )
        gcn = run_single("GCN", to_undirected(chameleon), seed=0, trainer=trainer)
        assert adpa.test_accuracy > gcn.test_accuracy

    def test_adpa_competitive_on_amundirected(self, citeseer, trainer):
        """ADPA on the AMUndirected output stays within a few points of GPR-GNN."""
        undirected = to_undirected(citeseer)
        adpa = run_single(
            "ADPA", undirected, seed=0, trainer=trainer, model_kwargs={"num_steps": 2, "hidden": 32}
        )
        gpr = run_single("GPRGNN", undirected, seed=0, trainer=trainer)
        assert adpa.test_accuracy > gpr.test_accuracy - 0.1


class TestEndToEndWorkflow:
    def test_full_workflow_on_both_regimes(self, citeseer, chameleon):
        from repro.api import AmudConfig, Session, TrainConfig

        session = Session(
            train=TrainConfig(epochs=40, patience=15),
            amud=AmudConfig(undirected_model="GPRGNN", directed_model="ADPA"),
        )
        homophilous = session.from_graph(citeseer).amud().fit()
        assert homophilous.model_name == "GPRGNN"

        heterophilous = session.from_graph(chameleon).amud().fit(num_steps=2, hidden=32)
        assert heterophilous.model_name == "ADPA"

        for model in (homophilous, heterophilous):
            majority = model.graph.label_distribution().max()
            assert model.test_accuracy > majority

    def test_training_reproducibility_end_to_end(self, chameleon):
        trainer = Trainer(epochs=20, patience=10)
        first = run_single("DirGNN", chameleon, seed=3, trainer=trainer)
        second = run_single("DirGNN", chameleon, seed=3, trainer=trainer)
        assert first.test_accuracy == pytest.approx(second.test_accuracy)
        np.testing.assert_allclose(first.history["loss"], second.history["loss"])
