"""Tests for graph transforms (undirection, sparsity) and split utilities."""

import numpy as np
import pytest

from repro.graph import (
    add_graph_self_loops,
    largest_connected_component,
    per_class_split,
    ratio_split,
    remove_self_loops,
    row_normalize_features,
    sparsify_edges,
    sparsify_features,
    sparsify_labels,
    split_counts,
    standardize_features,
    to_undirected,
    validate_splits,
)


class TestBasicTransforms:
    def test_to_undirected_symmetric(self, tiny_graph):
        undirected = to_undirected(tiny_graph)
        difference = undirected.adjacency - undirected.adjacency.T
        assert np.abs(difference.toarray()).sum() == 0
        assert not undirected.is_directed()

    def test_to_undirected_does_not_mutate_input(self, tiny_graph):
        edges_before = tiny_graph.num_edges
        to_undirected(tiny_graph)
        assert tiny_graph.num_edges == edges_before

    def test_to_undirected_binary(self, tiny_graph):
        undirected = to_undirected(tiny_graph)
        assert set(np.unique(undirected.adjacency.data)) == {1.0}

    def test_self_loop_roundtrip(self, tiny_graph):
        looped = add_graph_self_loops(tiny_graph)
        np.testing.assert_allclose(looped.adjacency.diagonal(), 1.0)
        cleaned = remove_self_loops(looped)
        assert cleaned.adjacency.diagonal().sum() == 0

    def test_row_normalize_features(self, tiny_graph):
        normalized = row_normalize_features(tiny_graph)
        sums = np.abs(normalized.features).sum(axis=1)
        np.testing.assert_allclose(sums[sums > 0], 1.0)

    def test_standardize_features(self, homophilous_graph):
        standardized = standardize_features(homophilous_graph)
        np.testing.assert_allclose(standardized.features.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(standardized.features.std(axis=0), 1.0, atol=1e-2)

    def test_largest_connected_component(self, homophilous_graph):
        component = largest_connected_component(homophilous_graph)
        assert component.num_nodes <= homophilous_graph.num_nodes
        assert component.num_nodes > 0


class TestSparsityInjectors:
    def test_feature_sparsity_zeroes_rows(self, homophilous_graph):
        sparsified = sparsify_features(homophilous_graph, 0.5, rng=np.random.default_rng(0))
        zero_rows = np.sum(np.all(sparsified.features == 0, axis=1))
        assert zero_rows > 0
        # original untouched
        assert np.sum(np.all(homophilous_graph.features == 0, axis=1)) == 0

    def test_feature_sparsity_protects_training_nodes(self, homophilous_graph):
        sparsified = sparsify_features(
            homophilous_graph, 1.0, rng=np.random.default_rng(0), protect_train=True
        )
        train_rows = sparsified.features[sparsified.train_mask]
        assert not np.any(np.all(train_rows == 0, axis=1))

    def test_feature_sparsity_invalid_rate(self, homophilous_graph):
        with pytest.raises(ValueError):
            sparsify_features(homophilous_graph, 1.5)

    def test_edge_sparsity_removes_expected_fraction(self, homophilous_graph):
        sparsified = sparsify_edges(homophilous_graph, 0.4, rng=np.random.default_rng(0))
        expected = homophilous_graph.num_edges - int(round(0.4 * homophilous_graph.num_edges))
        assert sparsified.num_edges == expected

    def test_edge_sparsity_zero_and_full(self, homophilous_graph):
        unchanged = sparsify_edges(homophilous_graph, 0.0, rng=np.random.default_rng(0))
        assert unchanged.num_edges == homophilous_graph.num_edges
        empty = sparsify_edges(homophilous_graph, 1.0, rng=np.random.default_rng(0))
        assert empty.num_edges == 0

    def test_label_sparsity_limits_training_nodes(self, homophilous_graph):
        sparsified = sparsify_labels(homophilous_graph, 2, rng=np.random.default_rng(0))
        for cls in range(sparsified.num_classes):
            count = np.sum(sparsified.labels[sparsified.train_mask] == cls)
            assert count <= 2
        # val/test untouched
        np.testing.assert_array_equal(sparsified.val_mask, homophilous_graph.val_mask)

    def test_label_sparsity_requires_split(self, tiny_graph):
        with pytest.raises(ValueError):
            sparsify_labels(tiny_graph, 1)

    def test_label_sparsity_invalid_count(self, homophilous_graph):
        with pytest.raises(ValueError):
            sparsify_labels(homophilous_graph, 0)


class TestSplits:
    def test_per_class_split_counts(self, homophilous_graph):
        counts = split_counts(homophilous_graph)
        assert counts[0] == 10 * homophilous_graph.num_classes
        assert counts[1] == 60
        assert sum(counts) <= homophilous_graph.num_nodes

    def test_per_class_split_valid(self, homophilous_graph):
        validate_splits(homophilous_graph)

    def test_ratio_split_proportions(self, heterophilous_graph):
        train, val, test = split_counts(heterophilous_graph)
        n = heterophilous_graph.num_nodes
        assert train == pytest.approx(0.5 * n, rel=0.1)
        assert val == pytest.approx(0.25 * n, rel=0.15)
        assert train + val + test == n

    def test_ratio_split_stratified_covers_all_classes(self, heterophilous_graph):
        train_labels = heterophilous_graph.labels[heterophilous_graph.train_mask]
        assert set(np.unique(train_labels)) == set(range(heterophilous_graph.num_classes))

    def test_ratio_split_invalid_ratios(self, tiny_graph):
        with pytest.raises(ValueError):
            ratio_split(tiny_graph, train_ratio=0.8, val_ratio=0.4)

    def test_per_class_split_invalid_count(self, tiny_graph):
        with pytest.raises(ValueError):
            per_class_split(tiny_graph, train_per_class=0)

    def test_split_counts_requires_masks(self, tiny_graph):
        with pytest.raises(ValueError):
            split_counts(tiny_graph)

    def test_splits_deterministic_given_seed(self, homophilous_graph):
        from repro.graph.generators import DSBMConfig, directed_sbm

        config = DSBMConfig(num_nodes=100, num_classes=3, feature_dim=4, name="det")
        graph = directed_sbm(config, seed=5)
        split_a = ratio_split(graph, seed=11)
        split_b = ratio_split(graph, seed=11)
        np.testing.assert_array_equal(split_a.train_mask, split_b.train_mask)
        split_c = ratio_split(graph, seed=12)
        assert not np.array_equal(split_a.train_mask, split_c.train_mask)

    def test_validate_splits_detects_overlap(self, homophilous_graph):
        broken = homophilous_graph.with_(val_mask=homophilous_graph.train_mask.copy())
        with pytest.raises(ValueError):
            validate_splits(broken)
