"""Multi-process serving: front door, aggregation, crash recovery, 503s."""

from __future__ import annotations

import http.client
import json
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.api import Session, TrainConfig
from repro.cli import _wait_for_shutdown
from repro.cluster import serve_cluster
from repro.obs import parse_prometheus


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    root = tmp_path_factory.mktemp("cluster-artifact")
    handle = (
        Session(train=TrainConfig(epochs=3, patience=3)).load("texas").fit("MLP")
    )
    path = handle.save(root / "texas-mlp")
    return str(path), handle.predict()


@pytest.fixture(scope="module")
def stack(artifact, tmp_path_factory):
    path, expected = artifact
    cache_dir = tmp_path_factory.mktemp("cluster-cache")
    server = serve_cluster([path], workers=2, cache_dir=str(cache_dir), port=0)
    with server:
        yield server, expected, cache_dir


def request(server, method, path, body=None):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=60)
    try:
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def get_json(server, path):
    status, body = request(server, "GET", path)
    return status, json.loads(body)


class TestFrontDoor:
    def test_predict_matches_in_process_and_names_its_worker(self, stack):
        server, expected, _ = stack
        status, body = request(
            server, "POST", "/predict", json.dumps({"node_ids": [0, 1, 2]})
        )
        payload = json.loads(body)
        assert status == 200
        assert payload["worker"] in {"w0", "w1"}
        assert payload["shard"] == "texas"
        np.testing.assert_array_equal(payload["predictions"], expected[:3])
        assert payload["latency_ms"] > 0

    def test_load_balances_across_workers(self, stack):
        server, expected, _ = stack
        served = set()
        for _ in range(4):
            _, body = request(
                server, "POST", "/predict", json.dumps({"node_ids": [0]})
            )
            payload = json.loads(body)
            served.add(payload["worker"])
            # Every worker serves identical predictions — shared caches,
            # deterministic forwards.
            assert payload["predictions"] == [int(expected[0])]
        assert served == {"w0", "w1"}

    def test_health_reports_the_fleet(self, stack):
        server, _, _ = stack
        status, payload = get_json(server, "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["count"] == 2
        assert set(payload["workers"]) <= {"w0", "w1"}

    def test_shards_carry_worker_ids(self, stack):
        server, _, _ = stack
        status, payload = get_json(server, "/shards")
        assert status == 200
        workers = {entry["worker"] for entry in payload["shards"]}
        assert workers == {"w0", "w1"}
        fingerprints = {entry["fingerprint"] for entry in payload["shards"]}
        assert len(fingerprints) == 1  # same artifact in every worker

    def test_unknown_shard_is_routing_404_not_overload(self, stack):
        server, _, _ = stack
        status, body = request(
            server, "POST", "/predict", json.dumps({"shard": "nope"})
        )
        assert status == 404
        assert json.loads(body)["error_type"] == "UnknownShard"

    def test_bad_body_is_400(self, stack):
        server, _, _ = stack
        status, _ = request(server, "POST", "/predict", "{nope")
        assert status == 400
        status, _ = request(
            server, "POST", "/predict", json.dumps({"node_ids": ["a"]})
        )
        assert status == 400

    def test_unknown_path_is_404(self, stack):
        server, _, _ = stack
        status, _ = request(server, "GET", "/nope")
        assert status == 404


class TestAggregation:
    def test_stats_nests_pool_workers_and_http(self, stack):
        server, _, _ = stack
        status, payload = get_json(server, "/stats")
        assert status == 200
        assert payload["pool"]["count"] == 2
        assert set(payload["workers"]) == {"w0", "w1"}
        for entry in payload["workers"].values():
            assert entry["router"]["submitted"] >= 0
        assert payload["http"]["requests"] >= 1

    def test_metrics_aggregate_with_worker_labels(self, stack):
        server, _, _ = stack
        # Traffic through both workers so per-worker series exist.
        for _ in range(2):
            request(server, "POST", "/predict", json.dumps({"node_ids": [0]}))
        status, body = request(server, "GET", "/metrics")
        assert status == 200
        families = parse_prometheus(body.decode())
        submitted = families["repro_cluster_worker_submitted_total"]
        worker_labels = {labels["worker"] for _, labels, _ in submitted["samples"]}
        assert worker_labels == {"w0", "w1"}
        # No shard-name collisions: both workers' texas series coexist,
        # distinguished by the worker label.
        shard_requests = families["repro_cluster_worker_shard_requests_total"]
        pairs = {
            (labels["worker"], labels["shard"])
            for _, labels, _ in shard_requests["samples"]
        }
        assert pairs == {("w0", "texas"), ("w1", "texas")}
        # Cluster-wide latency histogram merged across the fleet.
        merged = families["repro_cluster_latency_ms"]
        assert merged["type"] == "histogram"

    def test_workers_share_one_spilled_cache_dir(self, stack):
        _, _, cache_dir = stack
        assert list(cache_dir.glob("*.npz"))  # someone spilled on load


class TestResilience:
    def test_crash_mid_service_drops_nothing(self, stack):
        server, expected, _ = stack
        assert server.pool.kill_worker("w0")
        for _ in range(8):
            status, body = request(
                server, "POST", "/predict", json.dumps({"node_ids": [0]})
            )
            assert status == 200
            assert json.loads(body)["predictions"] == [int(expected[0])]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and len(server.pool.healthy_workers()) < 2:
            time.sleep(0.1)
        assert len(server.pool.healthy_workers()) == 2
        assert server.pool.stats().restarts >= 1


class TestShedding:
    def test_no_healthy_worker_sheds_503(self, artifact):
        path, _ = artifact
        server = serve_cluster([path], workers=1, max_restarts=0, port=0)
        with server:
            server.pool.kill_worker("w0")
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and server.pool.healthy_workers():
                time.sleep(0.05)
            status, body = request(
                server, "POST", "/predict", json.dumps({"node_ids": [0]})
            )
            assert status == 503
            assert "error" in json.loads(body)
            status, payload = get_json(server, "/health")
            assert status == 503
            assert payload["status"] == "unavailable"
            assert server.stats().shed >= 1


class TestSignalDrain:
    def test_wait_for_shutdown_names_the_signal(self):
        timer = threading.Timer(
            0.2, lambda: os.kill(os.getpid(), signal.SIGTERM)
        )
        timer.start()
        try:
            assert _wait_for_shutdown(30.0) == "SIGTERM"
        finally:
            timer.cancel()

    def test_wait_for_shutdown_times_out_quietly(self):
        assert _wait_for_shutdown(0.05) is None
