"""Tests for the residual-propagation extension of ADPA (Sec. IV-A discussion)."""

import numpy as np
import pytest

from repro.adpa import ADPA, build_dp_operators, propagate_features
from repro.training import Trainer


class TestResidualPropagation:
    def test_invalid_alpha_rejected(self, heterophilous_graph):
        with pytest.raises(ValueError):
            propagate_features(heterophilous_graph, num_steps=2, residual_alpha=1.0)
        with pytest.raises(ValueError):
            propagate_features(heterophilous_graph, num_steps=2, residual_alpha=-0.1)

    def test_zero_alpha_matches_plain_propagation(self, heterophilous_graph):
        operators = build_dp_operators(heterophilous_graph, order=2)
        plain = propagate_features(heterophilous_graph, num_steps=2, operators=operators)
        residual = propagate_features(
            heterophilous_graph, num_steps=2, operators=operators, residual_alpha=0.0
        )
        for name in plain.operator_names:
            np.testing.assert_allclose(plain.steps[1][name], residual.steps[1][name])

    def test_residual_step_formula(self, heterophilous_graph):
        """Step 1 must equal (1-α) G X + α X exactly."""
        alpha = 0.3
        operators = build_dp_operators(heterophilous_graph, order=1)
        result = propagate_features(
            heterophilous_graph, num_steps=1, operators=operators, residual_alpha=alpha
        )
        features = heterophilous_graph.features
        for name, operator in operators.items():
            expected = (1 - alpha) * (operator @ features) + alpha * features
            np.testing.assert_allclose(result.steps[0][name], expected)

    def test_residual_keeps_features_closer_to_input(self, heterophilous_graph):
        """A stronger residual keeps deep propagated features nearer the originals."""
        operators = build_dp_operators(heterophilous_graph, order=2)
        plain = propagate_features(heterophilous_graph, num_steps=5, operators=operators)
        residual = propagate_features(
            heterophilous_graph, num_steps=5, operators=operators, residual_alpha=0.5
        )
        features = heterophilous_graph.features
        name = plain.operator_names[0]
        plain_distance = np.linalg.norm(plain.steps[-1][name] - features)
        residual_distance = np.linalg.norm(residual.steps[-1][name] - features)
        assert residual_distance < plain_distance

    def test_adpa_accepts_residual_alpha(self, heterophilous_graph):
        model = ADPA.from_graph(
            heterophilous_graph, hidden=16, num_steps=3, residual_alpha=0.2, seed=0
        )
        result = Trainer(epochs=15, patience=15).fit(model, heterophilous_graph)
        majority = heterophilous_graph.label_distribution().max()
        assert result.test_accuracy > majority

    def test_adpa_residual_changes_cache(self, heterophilous_graph):
        plain = ADPA.from_graph(heterophilous_graph, hidden=16, num_steps=2, seed=0)
        residual = ADPA.from_graph(
            heterophilous_graph, hidden=16, num_steps=2, residual_alpha=0.4, seed=0
        )
        plain_cache = plain.preprocess(heterophilous_graph)
        residual_cache = residual.preprocess(heterophilous_graph)
        plain_block = plain_cache["steps"][1][1].numpy()
        residual_block = residual_cache["steps"][1][1].numpy()
        assert not np.allclose(plain_block, residual_block)
