"""Tests for the directed SBM generator and its calibration knobs."""

import numpy as np
import pytest

from repro.graph.generators import (
    DSBMConfig,
    directed_sbm,
    heterophilous_digraph,
    homophilous_digraph,
)
from repro.metrics import edge_homophily


class TestConfigValidation:
    def test_rejects_bad_homophily(self):
        with pytest.raises(ValueError):
            DSBMConfig(homophily=1.5)

    def test_rejects_bad_asymmetry(self):
        with pytest.raises(ValueError):
            DSBMConfig(directional_asymmetry=-0.1)

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            DSBMConfig(avg_degree=0.0)

    def test_rejects_too_few_nodes(self):
        with pytest.raises(ValueError):
            DSBMConfig(num_nodes=3, num_classes=5)

    def test_rejects_unknown_asymmetry_mode(self):
        with pytest.raises(ValueError):
            DSBMConfig(asymmetry_mode="diagonal")


class TestGeneratedGraphs:
    def test_basic_shape(self):
        config = DSBMConfig(num_nodes=200, num_classes=4, feature_dim=8, avg_degree=3.0)
        graph = directed_sbm(config, seed=0)
        assert graph.num_nodes == 200
        assert graph.num_features == 8
        assert graph.num_classes == 4
        assert graph.num_edges > 0
        assert graph.adjacency.diagonal().sum() == 0  # no self-loops

    def test_determinism(self):
        config = DSBMConfig(num_nodes=150, num_classes=3, feature_dim=6)
        a = directed_sbm(config, seed=3)
        b = directed_sbm(config, seed=3)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.adjacency.toarray(), b.adjacency.toarray())

    def test_different_seeds_differ(self):
        config = DSBMConfig(num_nodes=150, num_classes=3, feature_dim=6)
        a = directed_sbm(config, seed=3)
        b = directed_sbm(config, seed=4)
        assert not np.array_equal(a.adjacency.toarray(), b.adjacency.toarray())

    def test_every_class_present(self):
        config = DSBMConfig(num_nodes=60, num_classes=6, feature_dim=4, class_imbalance=1.0)
        graph = directed_sbm(config, seed=0)
        assert set(np.unique(graph.labels)) == set(range(6))

    def test_homophily_knob_controls_edge_homophily(self):
        high = directed_sbm(
            DSBMConfig(num_nodes=600, num_classes=4, avg_degree=6, homophily=0.85, feature_dim=4),
            seed=0,
        )
        low = directed_sbm(
            DSBMConfig(num_nodes=600, num_classes=4, avg_degree=6, homophily=0.15, feature_dim=4),
            seed=0,
        )
        assert edge_homophily(high) > 0.7
        assert edge_homophily(low) < 0.3

    def test_edge_homophily_matches_target(self):
        target = 0.6
        graph = directed_sbm(
            DSBMConfig(num_nodes=800, num_classes=5, avg_degree=8, homophily=target, feature_dim=4),
            seed=1,
        )
        assert edge_homophily(graph) == pytest.approx(target, abs=0.07)

    def test_feature_signal_controls_separability(self):
        strong = directed_sbm(
            DSBMConfig(num_nodes=300, num_classes=3, feature_dim=16, feature_signal=2.0),
            seed=0,
        )
        weak = directed_sbm(
            DSBMConfig(num_nodes=300, num_classes=3, feature_dim=16, feature_signal=0.01),
            seed=0,
        )

        def class_separation(graph):
            means = np.stack(
                [graph.features[graph.labels == cls].mean(axis=0) for cls in range(3)]
            )
            return np.linalg.norm(means[0] - means[1])

        assert class_separation(strong) > 5 * class_separation(weak)

    def test_average_degree_close_to_target(self):
        config = DSBMConfig(num_nodes=1000, num_classes=4, avg_degree=5.0, feature_dim=4)
        graph = directed_sbm(config, seed=0)
        # Duplicates and self-loops are dropped, so slight under-shoot is fine.
        assert 4.0 <= graph.num_edges / graph.num_nodes <= 5.0

    def test_class_imbalance_skews_distribution(self):
        balanced = directed_sbm(
            DSBMConfig(num_nodes=1000, num_classes=4, feature_dim=4, class_imbalance=0.0), seed=0
        )
        skewed = directed_sbm(
            DSBMConfig(num_nodes=1000, num_classes=4, feature_dim=4, class_imbalance=1.0), seed=0
        )
        assert skewed.label_distribution().max() > balanced.label_distribution().max()

    def test_hierarchy_mode_orients_edges_upward(self):
        config = DSBMConfig(
            num_nodes=500,
            num_classes=2,
            avg_degree=4,
            homophily=0.1,
            directional_asymmetry=1.0,
            asymmetry_mode="hierarchy",
            feature_dim=4,
        )
        graph = directed_sbm(config, seed=0)
        rows, cols = graph.edge_list()
        hetero = graph.labels[rows] != graph.labels[cols]
        # With full asymmetry every heterophilous edge points low -> high class.
        assert np.all(graph.labels[rows[hetero]] <= graph.labels[cols[hetero]])


class TestConvenienceConstructors:
    def test_homophilous_digraph_defaults(self):
        graph = homophilous_digraph(num_nodes=300, seed=0)
        assert edge_homophily(graph) > 0.6
        assert graph.name == "homophilous"

    def test_heterophilous_digraph_defaults(self):
        graph = heterophilous_digraph(num_nodes=300, seed=0)
        assert edge_homophily(graph) < 0.35
        assert graph.name == "heterophilous"
