"""Tests for the analysis utilities (efficiency profiling, attention inspection)."""

import numpy as np
import pytest

from repro.adpa import ADPA
from repro.analysis import (
    dp_attention_distribution,
    effective_receptive_depth,
    efficiency_report,
    format_efficiency_table,
    hop_attention_distribution,
    profile_model,
    summarize_attention,
)
from repro.training import Trainer


class TestEfficiencyProfiling:
    def test_profile_model_fields(self, heterophilous_graph):
        profile = profile_model("SGC", heterophilous_graph, num_epochs=2)
        assert profile.model == "SGC"
        assert profile.dataset == heterophilous_graph.name
        assert profile.preprocess_seconds >= 0
        assert profile.seconds_per_epoch > 0
        assert profile.num_parameters > 0
        row = profile.as_row()
        assert row["parameters"] == profile.num_parameters

    def test_profile_invalid_epochs(self, heterophilous_graph):
        with pytest.raises(ValueError):
            profile_model("SGC", heterophilous_graph, num_epochs=0)

    def test_efficiency_report_and_table(self, heterophilous_graph):
        profiles = efficiency_report(
            ["MLP", "GCN"], heterophilous_graph, num_epochs=2, model_kwargs={"GCN": {"hidden": 8}}
        )
        assert [profile.model for profile in profiles] == ["MLP", "GCN"]
        table = format_efficiency_table(profiles)
        assert "MLP" in table and "GCN" in table

    def test_decoupled_model_has_cheaper_epochs_than_coupled(self, heterophilous_graph):
        """The Sec. IV-D claim in miniature: SGC epochs are cheaper than GCN epochs."""
        sgc = profile_model("SGC", heterophilous_graph, num_epochs=3)
        gcn = profile_model("GCN", heterophilous_graph, num_epochs=3, model_kwargs={"hidden": 64})
        assert sgc.seconds_per_epoch < gcn.seconds_per_epoch


class TestAttentionAnalysis:
    @pytest.fixture(scope="class")
    def trained_adpa(self, heterophilous_graph):
        model = ADPA.from_graph(heterophilous_graph, hidden=16, num_steps=3, seed=0)
        trainer = Trainer(epochs=15, patience=15)
        trainer.fit(model, heterophilous_graph)
        cache = model.preprocess(heterophilous_graph)
        return model, cache

    def test_hop_distribution_sums_to_one(self, trained_adpa):
        model, cache = trained_adpa
        distribution = hop_attention_distribution(model, cache)
        assert distribution.shape == (3,)
        assert distribution.sum() == pytest.approx(1.0, abs=1e-6)

    def test_hop_distribution_per_class(self, trained_adpa, heterophilous_graph):
        model, cache = trained_adpa
        per_class = hop_attention_distribution(
            model, cache, per_class=True, labels=heterophilous_graph.labels
        )
        assert per_class.shape == (heterophilous_graph.num_classes, 3)
        np.testing.assert_allclose(per_class.sum(axis=1), 1.0, atol=1e-6)

    def test_hop_distribution_per_class_requires_labels(self, trained_adpa):
        model, cache = trained_adpa
        with pytest.raises(ValueError):
            hop_attention_distribution(model, cache, per_class=True)

    def test_dp_distribution_sums_to_one(self, trained_adpa):
        model, cache = trained_adpa
        distribution = dp_attention_distribution(model, cache)
        assert set(distribution) == {"initial", "A", "At", "AA", "AAt", "AtA", "AtAt"}
        assert sum(distribution.values()) == pytest.approx(1.0, abs=1e-6)

    def test_dp_distribution_uniform_for_jk(self, heterophilous_graph):
        model = ADPA.from_graph(
            heterophilous_graph, hidden=16, num_steps=2, dp_attention="jk", seed=0
        )
        cache = model.preprocess(heterophilous_graph)
        distribution = dp_attention_distribution(model, cache)
        values = list(distribution.values())
        assert all(value == pytest.approx(values[0]) for value in values)

    def test_effective_receptive_depth_in_range(self, trained_adpa, heterophilous_graph):
        model, cache = trained_adpa
        depths = effective_receptive_depth(model, cache)
        assert depths.shape == (heterophilous_graph.num_nodes,)
        assert np.all(depths >= 1.0 - 1e-9)
        assert np.all(depths <= 3.0 + 1e-9)

    def test_summarize_attention(self, trained_adpa, heterophilous_graph):
        model, cache = trained_adpa
        summary = summarize_attention(model, heterophilous_graph, cache)
        assert 1.0 <= summary["mean_receptive_depth"] <= 3.0
        assert "dp_distribution" in summary
