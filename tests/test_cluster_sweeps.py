"""Distributed sweeps: deterministic sharding and bit-identical merges."""

from __future__ import annotations

import json

import pytest

from repro.api import ExperimentReport, SweepReport, SweepSpec, run_sweep, shard_cells
from repro.cluster import (
    ShardReport,
    merge_shard_files,
    merge_shard_reports,
    run_sweep_shard,
    spec_hash,
)


@pytest.fixture(scope="module")
def spec():
    quick = SweepSpec(models=("MLP", "GCN"), datasets=("texas", "cornell"))
    return quick.replace(config=quick.config.quick())


@pytest.fixture(scope="module")
def serial(spec):
    return run_sweep(spec).canonical()


@pytest.fixture(scope="module")
def shards(spec):
    return [run_sweep_shard(spec, index, 2) for index in range(2)]


class TestShardCells:
    def test_partition_is_exact(self, spec):
        total = len(spec.cells())
        owned = [shard_cells(spec, index, 3) for index in range(3)]
        flat = sorted(i for part in owned for i in part)
        assert flat == list(range(total))

    def test_bad_coordinates_rejected(self, spec):
        with pytest.raises(ValueError):
            shard_cells(spec, 2, 2)
        with pytest.raises(ValueError):
            shard_cells(spec, -1, 2)
        with pytest.raises(ValueError):
            shard_cells(spec, 0, 0)

    def test_spec_hash_tracks_content_not_order(self, spec):
        payload = spec.as_dict()
        reordered = dict(reversed(list(payload.items())))
        assert spec_hash(payload) == spec_hash(reordered)
        changed = dict(payload)
        changed["models"] = list(changed["models"]) + ["GPRGNN"]
        assert spec_hash(changed) != spec_hash(payload)


class TestMerge:
    def test_two_shards_merge_bit_identical_to_serial(self, spec, serial, shards):
        merged = merge_shard_reports(shards)
        assert merged.to_json(indent=2) == serial.to_json(indent=2)

    def test_single_shard_merge_is_the_identity(self, spec, serial):
        whole = run_sweep_shard(spec, 0, 1)
        merged = merge_shard_reports([whole])
        assert merged.to_json() == serial.to_json()

    def test_merge_order_does_not_matter(self, serial, shards):
        merged = merge_shard_reports(list(reversed(shards)))
        assert merged.to_json() == serial.to_json()

    def test_overlapping_shards_rejected(self, shards):
        with pytest.raises(ValueError, match="overlapping"):
            merge_shard_reports([shards[0], shards[0]])

    def test_missing_shard_detected_by_index(self, shards):
        with pytest.raises(ValueError, match=r"missing shard\(s\) \[1\]"):
            merge_shard_reports([shards[0]])

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            merge_shard_reports([])

    def test_foreign_spec_rejected_by_hash(self, spec, shards):
        other_spec = spec.replace(models=("MLP",))
        foreign = run_sweep_shard(other_spec, 1, 2)
        with pytest.raises(ValueError, match="different spec"):
            merge_shard_reports([shards[0], foreign])

    def test_shard_count_mismatch_rejected(self, spec, shards):
        lone = run_sweep_shard(spec, 0, 3)
        with pytest.raises(ValueError, match="shard_count"):
            merge_shard_reports([shards[1], lone])

    def test_tampered_cell_indices_rejected(self, shards):
        shard = shards[0]
        wrong = ShardReport(
            spec=shard.spec,
            shard_index=shard.shard_index,
            shard_count=shard.shard_count,
            cell_indices=tuple(reversed(shard.cell_indices)),
            cells=shard.cells,
        )
        with pytest.raises(ValueError, match="deterministic partition"):
            merge_shard_reports([wrong, shards[1]])

    def test_keep_timings_preserves_measured_wall_clock(self, shards):
        merged = merge_shard_reports(shards, canonical=False)
        assert any(
            run.fit_seconds > 0 for cell in merged.cells for run in cell.runs
        )
        canonical = merge_shard_reports(shards)
        assert all(
            run.fit_seconds == 0.0 and run.preprocess_seconds == 0.0
            for cell in canonical.cells
            for run in cell.runs
        )


class TestShardReportFormat:
    def test_save_load_round_trip(self, shards, tmp_path):
        path = shards[0].save(tmp_path / "shard0.json")
        reloaded = ShardReport.load(path)
        assert reloaded.to_json() == shards[0].to_json()

    def test_merge_from_files_matches_in_memory(self, serial, shards, tmp_path):
        paths = [
            shard.save(tmp_path / f"shard{shard.shard_index}.json")
            for shard in shards
        ]
        assert merge_shard_files(paths).to_json() == serial.to_json()

    def test_merged_json_round_trips_through_sweep_report(self, serial, shards):
        merged = merge_shard_reports(shards)
        reparsed = SweepReport.from_json(merged.to_json())
        assert reparsed.to_json() == merged.to_json()
        assert all(isinstance(cell, ExperimentReport) for cell in reparsed.cells)

    def test_version_gate_rejects_future_formats(self, shards):
        payload = json.loads(shards[0].to_json())
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version 99"):
            ShardReport.from_dict(payload)

    def test_altered_spec_rejected_by_stored_hash(self, shards):
        payload = json.loads(shards[0].to_json())
        payload["spec"]["models"] = ["MLP"]
        with pytest.raises(ValueError, match="does not match"):
            ShardReport.from_dict(payload)

    def test_mismatched_cells_and_indices_rejected(self, shards):
        shard = shards[0]
        with pytest.raises(ValueError, match="cell"):
            ShardReport(
                spec=shard.spec,
                shard_index=0,
                shard_count=2,
                cell_indices=shard.cell_indices[:-1],
                cells=shard.cells,
            )
