"""Behavioural tests for specific model mechanisms (beyond shape/smoke checks)."""

import numpy as np
import pytest

from repro.adpa import ADPA
from repro.models import (
    A2DUG,
    BernNet,
    DIMPA,
    GCNII,
    GPRGNN,
    LINKX,
    MagNet,
    SGC,
)
from repro.training import Trainer, run_single


class TestSpectralMechanisms:
    def test_bernnet_filter_coefficients_nonnegative_in_forward(self, heterophilous_graph):
        model = BernNet.from_graph(heterophilous_graph, hidden=8, seed=0)
        # Force some negative raw coefficients; the forward pass must clamp them.
        model.theta.data = np.array([-1.0, 0.5, -0.2, 0.3, 1.0])
        cache = model.preprocess(heterophilous_graph)
        logits = model.forward(cache)
        assert np.all(np.isfinite(logits.numpy()))

    def test_magnet_q_zero_ignores_direction(self, heterophilous_graph):
        """With q = 0 the magnetic Laplacian degenerates to the symmetric one,
        so the imaginary operator must vanish."""
        model = MagNet.from_graph(heterophilous_graph, hidden=8, q=0.0, seed=0)
        cache = model.preprocess(heterophilous_graph)
        assert np.abs(cache["operator_im"].toarray()).max() < 1e-12

    def test_magnet_q_positive_uses_direction(self, heterophilous_graph):
        model = MagNet.from_graph(heterophilous_graph, hidden=8, q=0.25, seed=0)
        cache = model.preprocess(heterophilous_graph)
        assert np.abs(cache["operator_im"].toarray()).max() > 0

    def test_gprgnn_weights_adapt_during_training(self, heterophilous_graph):
        model = GPRGNN.from_graph(heterophilous_graph, hidden=16, seed=0)
        initial = model.gammas.data.copy()
        Trainer(epochs=20, patience=20).fit(model, heterophilous_graph)
        assert not np.allclose(model.gammas.data, initial)


class TestDecoupledPropagation:
    def test_sgc_more_steps_smooths_features(self, homophilous_graph):
        """Each SGC propagation step reduces total feature variance (smoothing)."""
        shallow = SGC.from_graph(homophilous_graph, num_steps=1, seed=0)
        deep = SGC.from_graph(homophilous_graph, num_steps=5, seed=0)
        var_shallow = shallow.preprocess(homophilous_graph)["x"].numpy().var()
        var_deep = deep.preprocess(homophilous_graph)["x"].numpy().var()
        assert var_deep < var_shallow

    def test_dimpa_uses_distinct_source_target_views(self, heterophilous_graph):
        model = DIMPA.from_graph(heterophilous_graph, hidden=8, num_hops=2, seed=0)
        cache = model.preprocess(heterophilous_graph)
        source_hop = cache["source_hops"][1].numpy()
        target_hop = cache["target_hops"][1].numpy()
        assert not np.allclose(source_hop, target_hop)

    def test_a2dug_propagates_both_views(self, heterophilous_graph):
        model = A2DUG.from_graph(heterophilous_graph, hidden=8, num_steps=2, seed=0)
        cache = model.preprocess(heterophilous_graph)
        assert cache["directed_propagated"].shape[1] == 2 * heterophilous_graph.num_features
        assert cache["undirected_propagated"].shape == heterophilous_graph.features.shape

    def test_gcnii_deeper_does_not_collapse(self, homophilous_graph, fast_trainer):
        """Initial residual + identity mapping keep the deep variant trainable:
        an 8-layer GCNII must still clearly beat the majority-class baseline
        under the short smoke-test budget (a plain deep GCN would oversmooth)."""
        deep = run_single(
            "GCNII", homophilous_graph, seed=0, trainer=fast_trainer,
            model_kwargs={"hidden": 16, "num_layers": 8},
        )
        majority = homophilous_graph.label_distribution().max()
        assert deep.test_accuracy > majority + 0.2

    def test_linkx_adjacency_encoder_rebuilt_per_graph_size(self, homophilous_graph, heterophilous_graph):
        model = LINKX.from_graph(homophilous_graph, hidden=8, seed=0)
        model.preprocess(homophilous_graph)
        first_encoder = model._adjacency_encoder
        model.preprocess(heterophilous_graph.with_(name="other"))
        assert model._adjacency_encoder is first_encoder  # same node count -> reused
        shrunk = heterophilous_graph.copy()
        # Different node count forces a rebuild.
        import scipy.sparse as sp

        smaller = shrunk.with_(
            adjacency=sp.csr_matrix(shrunk.adjacency[:100, :100]),
            features=shrunk.features[:100],
            labels=shrunk.labels[:100],
            train_mask=None, val_mask=None, test_mask=None,
        )
        model.preprocess(smaller)
        assert model._adjacency_encoder is not first_encoder


class TestADPABehaviours:
    def test_adpa_deterministic_given_seed(self, heterophilous_graph):
        trainer = Trainer(epochs=10, patience=10)
        first = run_single("ADPA", heterophilous_graph, seed=7, trainer=trainer,
                           model_kwargs={"hidden": 16, "num_steps": 2})
        second = run_single("ADPA", heterophilous_graph, seed=7, trainer=trainer,
                            model_kwargs={"hidden": 16, "num_steps": 2})
        assert first.test_accuracy == pytest.approx(second.test_accuracy)

    def test_adpa_order_controls_operator_count(self, heterophilous_graph):
        model = ADPA.from_graph(heterophilous_graph, hidden=8, num_steps=2, order=1, seed=0)
        cache = model.preprocess(heterophilous_graph)
        assert len(model.selected_operators(cache)) == 2
        model3 = ADPA.from_graph(heterophilous_graph, hidden=8, num_steps=2, order=3, seed=0)
        cache3 = model3.preprocess(heterophilous_graph)
        assert len(model3.selected_operators(cache3)) == 14

    def test_adpa_dp_attention_prefers_informative_patterns(self, heterophilous_graph):
        """After training on the cyclic heterophilous graph, the average DP
        attention on AAᵀ/AᵀA should exceed the attention on AA/AᵀAᵀ."""
        from repro.analysis import dp_attention_distribution

        model = ADPA.from_graph(heterophilous_graph, hidden=32, num_steps=2, seed=0)
        Trainer(epochs=40, patience=40).fit(model, heterophilous_graph)
        cache = model.preprocess(heterophilous_graph)
        weights = dp_attention_distribution(model, cache)
        informative = weights["AAt"] + weights["AtA"]
        misleading = weights["AA"] + weights["AtAt"]
        assert informative > misleading - 0.05
