"""Tests for the HTTP front door: endpoints, error paths, load shedding."""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.models.registry import create_model
from repro.obs import parse_prometheus
from repro.serving import BaseHttpServer, HttpServer, ShardRouter
from repro.training import Trainer

MAX_PENDING = 8
MAX_BODY = 4096


@pytest.fixture(scope="module")
def stack():
    """A two-shard router behind a live HTTP server on an ephemeral port."""
    shards = {}
    expected = {}
    router = ShardRouter(max_pending=MAX_PENDING, max_wait_ms=0.5)
    for dataset in ("texas", "cornell"):
        graph = load_dataset(dataset, seed=0)
        model = create_model("MLP", graph, seed=0, hidden=8)
        Trainer(epochs=2, patience=5).fit(model, graph)
        router.add_shard(model, graph, name=dataset)
        shards[dataset] = graph
        expected[dataset] = model.predict_logits(graph).argmax(axis=1)
    with router, HttpServer(router, port=0, max_body_bytes=MAX_BODY) as server:
        yield server, router, expected


def request(server, method, path, body=None):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def get_json(server, path):
    status, body = request(server, "GET", path)
    return status, json.loads(body)


class TestEndpoints:
    def test_health(self, stack):
        server, _, _ = stack
        status, payload = get_json(server, "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["shards"] == 2
        assert payload["uptime_s"] >= 0

    def test_predict_matches_in_process_predictions(self, stack):
        server, _, expected = stack
        status, body = request(
            server, "POST", "/predict",
            json.dumps({"node_ids": [0, 1, 2], "shard": "texas"}),
        )
        payload = json.loads(body)
        assert status == 200
        assert payload["shard"] == "texas"
        np.testing.assert_array_equal(payload["predictions"], expected["texas"][:3])
        assert payload["latency_ms"] > 0
        assert set(payload["spans"]) == {"queue", "cache", "forward", "deliver"}
        assert sum(payload["spans"].values()) == pytest.approx(
            payload["total_ms"], abs=1e-2
        )

    def test_predict_whole_graph_when_node_ids_omitted(self, stack):
        server, _, expected = stack
        status, body = request(
            server, "POST", "/predict", json.dumps({"shard": "cornell"})
        )
        payload = json.loads(body)
        assert status == 200
        np.testing.assert_array_equal(payload["predictions"], expected["cornell"])

    def test_shards_lists_engines_with_histograms(self, stack):
        server, _, _ = stack
        status, payload = get_json(server, "/shards")
        assert status == 200
        names = {shard["name"] for shard in payload["shards"]}
        assert names == {"texas", "cornell"}
        for shard in payload["shards"]:
            assert "latency" in shard["stats"]
            assert "p99_latency_ms" in shard["stats"]

    def test_stats_nests_router_and_http(self, stack):
        server, router, _ = stack
        request(server, "POST", "/predict", json.dumps({"shard": "texas"}))
        status, payload = get_json(server, "/stats")
        assert status == 200
        assert payload["max_pending"] == MAX_PENDING
        assert payload["latency"]["count"] >= 1
        assert payload["p50_latency_ms"] == payload["latency"]["p50_ms"]
        assert payload["http"]["requests"] >= 1
        assert payload["http"]["routes"]["/predict"]["200"] >= 1
        # The JSON body is exactly the snapshot plus the http section.
        assert payload["submitted"] == router.snapshot()["submitted"]

    def test_metrics_is_valid_prometheus(self, stack):
        server, _, _ = stack
        request(server, "POST", "/predict", json.dumps({"shard": "texas"}))
        status, body = request(server, "GET", "/metrics")
        assert status == 200
        families = parse_prometheus(body.decode("utf-8"))
        assert families["repro_router_submitted_total"]["type"] == "counter"
        assert families["repro_router_latency_ms"]["type"] == "histogram"
        samples = families["repro_http_requests_total"]["samples"]
        assert any(
            labels == {"route": "/predict", "status": "200"}
            for _, labels, _ in samples
        )

    def test_traces_expose_spans_with_shard(self, stack):
        server, _, _ = stack
        request(server, "POST", "/predict", json.dumps({"shard": "cornell"}))
        status, payload = get_json(server, "/traces?limit=5")
        assert status == 200
        traces = payload["traces"]
        assert 0 < len(traces) <= 5
        newest = traces[0]
        assert newest["shard"] in ("texas", "cornell")
        assert sum(newest["spans"].values()) == pytest.approx(
            newest["total_ms"], abs=1e-3
        )


class TestErrorPaths:
    def test_unknown_path_is_404(self, stack):
        server, _, _ = stack
        status, body = request(server, "GET", "/nope")
        assert status == 404
        assert "/predict" in json.loads(body)["routes"]

    def test_wrong_method_is_405(self, stack):
        server, _, _ = stack
        assert request(server, "POST", "/health")[0] == 405
        assert request(server, "GET", "/predict")[0] == 405

    def test_bad_json_is_400(self, stack):
        server, _, _ = stack
        assert request(server, "POST", "/predict", b"not json")[0] == 400
        assert request(server, "POST", "/predict", b"[1, 2]")[0] == 400

    def test_bad_node_ids_are_400(self, stack):
        server, _, _ = stack
        for payload in (
            {"node_ids": "zero", "shard": "texas"},
            {"node_ids": ["a"], "shard": "texas"},
            {"node_ids": [True], "shard": "texas"},
            {"node_ids": [10 ** 9], "shard": "texas"},
        ):
            status, _ = request(server, "POST", "/predict", json.dumps(payload))
            assert status == 400, payload

    def test_unknown_shard_is_404(self, stack):
        server, _, _ = stack
        status, body = request(
            server, "POST", "/predict", json.dumps({"shard": "nope"})
        )
        assert status == 404
        assert "nope" in json.loads(body)["error"]

    def test_ambiguous_routing_is_404_with_diagnostics(self, stack):
        server, _, _ = stack
        # Two shards and no shard= — the router's routing error surfaces.
        status, body = request(server, "POST", "/predict", json.dumps({}))
        assert status == 404
        assert "shard" in json.loads(body)["error"]

    def test_oversized_body_is_413(self, stack):
        server, _, _ = stack
        status, _ = request(server, "POST", "/predict", b"x" * (MAX_BODY + 1))
        assert status == 413

    def test_bad_traces_limit_is_400(self, stack):
        server, _, _ = stack
        assert request(server, "GET", "/traces?limit=zzz")[0] == 400

    def test_malformed_request_line_is_400(self, stack):
        import socket

        server, _, _ = stack
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(b"NONSENSE\r\n\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400")


class TestLoadShedding:
    def test_saturated_router_sheds_with_429(self, stack):
        server, router, _ = stack
        before = server.stats().shed
        # Drain every back-pressure slot so the next request cannot queue.
        for _ in range(MAX_PENDING):
            assert router._slots.acquire(blocking=False)
        try:
            status, body = request(
                server, "POST", "/predict", json.dumps({"shard": "texas"})
            )
        finally:
            for _ in range(MAX_PENDING):
                router._slots.release()
        assert status == 429
        assert json.loads(body)["max_pending"] == MAX_PENDING
        assert server.stats().shed == before + 1
        # Capacity restored: the same request succeeds now.
        status, _ = request(
            server, "POST", "/predict", json.dumps({"shard": "texas"})
        )
        assert status == 200


class TestKeepAlive:
    def test_many_requests_share_one_connection(self, stack):
        server, _, _ = stack
        before = server.stats().connections
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            for _ in range(5):
                connection.request(
                    "POST", "/predict", json.dumps({"shard": "texas"})
                )
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()
        assert server.stats().connections == before + 1

    def test_connection_close_is_honoured(self, stack):
        server, _, _ = stack
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            connection.request("GET", "/health", headers={"Connection": "close"})
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()


class TestSessionAndCli:
    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        from repro.api import Session, TrainConfig

        session = Session(train=TrainConfig(epochs=2, patience=5))
        handle = session.load("texas").fit("MLP", hidden=8)
        directory = tmp_path_factory.mktemp("http-artifact") / "model"
        handle.save(directory)
        return directory

    def test_session_serve_http_owns_both_lifecycles(self, artifact):
        from repro.api import HttpConfig, Session

        server = Session().serve_http(artifact, http=HttpConfig(port=0))
        with server:
            assert server.router._running
            status, payload = get_json(server, "/health")
            assert status == 200 and payload["shards"] == 1
            status, body = request(
                server, "POST", "/predict", json.dumps({"node_ids": [0]})
            )
            assert status == 200
            # Artifact-served shards are addressable by dataset name.
            status, _ = request(
                server, "POST", "/predict",
                json.dumps({"node_ids": [0], "shard": "texas"}),
            )
            assert status == 200
        assert not server.router._running

    def test_serve_config_carries_http_settings(self, artifact):
        from repro.api import HttpConfig, ServeConfig, Session

        config = ServeConfig(http=HttpConfig(port=0, max_body_bytes=512))
        server = Session(serve=config).serve_http(artifact)
        assert server.max_body_bytes == 512
        with server:
            assert request(server, "POST", "/predict", b"x" * 513)[0] == 413

    def test_cli_serve_for_seconds_smoke(self, artifact, capsys):
        from repro.cli import main

        assert main(
            ["serve", str(artifact), "--port", "0", "--for-seconds", "0.2"]
        ) == 0
        out = capsys.readouterr().out
        assert "serving 1 shard(s) at http://127.0.0.1:" in out
        assert "/metrics" in out

    def test_cli_serve_missing_artifact_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["serve", str(tmp_path / "absent"), "--for-seconds", "0.1"]) == 2


class _SlowServer(BaseHttpServer):
    """Minimal BaseHttpServer subclass with one deliberately slow route."""

    def _handlers(self):
        return {"/slow": ("GET", self._handle_slow)}

    async def _handle_slow(self, *, query: str, body: bytes):
        await asyncio.sleep(0.5)
        return 200, {"ok": True}


class TestDrain:
    def test_stop_drains_in_flight_requests(self):
        server = _SlowServer(port=0, drain_timeout=5.0)
        results = {}

        def slow_client() -> None:
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=30
            )
            try:
                connection.request("GET", "/slow")
                response = connection.getresponse()
                results["status"] = response.status
                results["body"] = json.loads(response.read())
            except Exception as error:  # surfaced by the assert below
                results["error"] = error
            finally:
                connection.close()

        with server:
            thread = threading.Thread(target=slow_client)
            thread.start()
            time.sleep(0.15)  # the handler is now mid-sleep
            server.stop()  # must wait for the response, not cancel it
            thread.join(timeout=10)
        assert results.get("error") is None, results
        assert results["status"] == 200
        assert results["body"] == {"ok": True}

    def test_drain_timeout_bounds_the_wait(self):
        # A handler that overstays the drain window is cancelled rather
        # than holding shutdown hostage.
        server = _SlowServer(port=0, drain_timeout=0.05)

        def hung_client() -> None:
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=30
            )
            try:
                connection.request("GET", "/slow")
                connection.getresponse().read()
            except Exception:
                pass  # the connection dying is the expected outcome
            finally:
                connection.close()

        with server:
            thread = threading.Thread(target=hung_client)
            thread.start()
            time.sleep(0.15)
            started = time.monotonic()
            server.stop()
            elapsed = time.monotonic() - started
            thread.join(timeout=10)
        assert elapsed < 2.0  # bounded by drain_timeout, not the handler

    def test_503_has_a_reason_phrase(self):
        from repro.serving.http import _REASONS

        assert _REASONS[503] == "Service Unavailable"
