"""Worker-pool supervision: protocol, dispatch, crash recovery, timeouts."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cluster import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    ClusterUnavailable,
    ProtocolError,
    RemoteError,
    TaskTimeout,
    WorkerDied,
    WorkerPool,
    decode_message,
    encode_message,
)
from repro.cluster.protocol import request, response_error, response_ok

SRC_ROOT = str(Path(__file__).resolve().parents[1] / "src")


def _worker_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _spawn_worker() -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cluster.worker", "--worker-id", "wtest"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=_worker_env(),
        bufsize=0,
    )


def _wait_healthy(pool: WorkerPool, count: int, timeout: float = 20.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(pool.healthy_workers()) >= count:
            return
        time.sleep(0.05)
    raise AssertionError(
        f"pool never reached {count} healthy workers; have {pool.healthy_workers()}"
    )


class TestProtocol:
    def test_round_trip(self):
        message = request(7, "ping", {"x": 1})
        decoded = decode_message(encode_message(message))
        assert decoded == {"v": PROTOCOL_VERSION, "id": 7, "op": "ping", "args": {"x": 1}}

    def test_ok_and_error_shapes(self):
        ok = decode_message(encode_message(response_ok(3, {"a": 1})))
        assert ok["ok"] is True and ok["result"] == {"a": 1}
        err = decode_message(encode_message(response_error(4, "boom", "ValueError")))
        assert err["ok"] is False and err["error_type"] == "ValueError"

    def test_version_mismatch_is_loud(self):
        line = encode_message(request(1, "ping")).replace(
            b'"v":%d' % PROTOCOL_VERSION, b'"v":999'
        )
        with pytest.raises(ProtocolError, match="version mismatch"):
            decode_message(line)

    def test_garbage_and_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_message(b"{nope\n")
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_message(b"[1, 2]\n")

    def test_oversized_message_rejected(self):
        with pytest.raises(ProtocolError, match="cap"):
            decode_message(b"x" * (MAX_MESSAGE_BYTES + 1))


@pytest.fixture(scope="module")
def pool():
    """A two-worker pool shared by the non-destructive tests."""
    with WorkerPool(2, heartbeat_interval=0.5) as shared:
        yield shared


class TestDispatch:
    def test_ping_round_robins_over_workers(self, pool):
        served = {pool.call("ping")["worker"] for _ in range(4)}
        assert served == {"w0", "w1"}

    def test_unknown_op_is_a_typed_remote_error(self, pool):
        with pytest.raises(RemoteError, match="unknown op") as info:
            pool.call("no-such-op")
        assert info.value.error_type == "UnknownOp"

    def test_in_worker_exception_carries_its_class_name(self, pool):
        # predict before load raises RuntimeError inside the worker.
        with pytest.raises(RemoteError, match="no router loaded") as info:
            pool.call("predict", {"node_ids": [0]})
        assert info.value.error_type == "RuntimeError"

    def test_pinned_call_hits_the_named_worker(self, pool):
        assert pool.call("ping", worker="w1")["worker"] == "w1"
        with pytest.raises(KeyError):
            pool.call("ping", worker="w9")

    def test_broadcast_reaches_every_healthy_worker(self, pool):
        results = pool.broadcast("ping")
        assert set(results) == {"w0", "w1"}
        assert all(entry["worker"] == name for name, entry in results.items())

    def test_stats_shape(self, pool):
        stats = pool.stats()
        assert stats.count == 2
        assert stats.healthy == 2
        assert set(stats.workers) == {"w0", "w1"}
        snapshot = pool.snapshot()
        assert snapshot["workers"]["w0"]["alive"] is True


class TestSupervision:
    def test_crash_restarts_the_worker(self):
        with WorkerPool(1, heartbeat_interval=0.2) as pool:
            first_pid = pool.call("ping")["pid"]
            with pytest.raises(WorkerDied):
                pool.call("crash", retries=0)
            _wait_healthy(pool, 1)
            after = pool.call("ping")
            assert after["pid"] != first_pid
            assert pool.stats().restarts == 1

    def test_worker_death_mid_op_retries_on_a_survivor(self):
        with WorkerPool(2, heartbeat_interval=0.5) as pool:
            # Two pings park the round-robin cursor back on w0, so the
            # sleep below deterministically lands there.
            pool.call("ping"), pool.call("ping")
            result = {}

            def run() -> None:
                result["value"] = pool.call("sleep", {"seconds": 1.5}, timeout=30)

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(0.4)  # the op is now in flight on w0
            pool.kill_worker("w0")
            thread.join(timeout=30)
            assert result["value"] == {"slept": 1.5}  # retried, not dropped
            assert pool.stats().retries >= 1

    def test_concurrent_callers_race_a_kill_without_hung_futures(self):
        """Two threads mid-op on dying workers: both must resolve cleanly.

        The race the retry path must survive: two concurrent calls are in
        flight when their workers get killed; each caller must either get
        its (idempotent) result from a survivor or raise a typed error —
        nothing may hang on a future nobody will ever resolve.
        """
        with WorkerPool(3, heartbeat_interval=0.5) as pool:
            results: dict = {}
            errors: dict = {}

            def run(slot: str) -> None:
                try:
                    results[slot] = pool.call(
                        "sleep", {"seconds": 1.2}, timeout=60
                    )
                except Exception as error:  # noqa: BLE001 — the assertion below
                    errors[slot] = error

            threads = [
                threading.Thread(target=run, args=(name,)) for name in ("a", "b")
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.4)  # both sleeps are now in flight
            pool.kill_worker("w0")
            pool.kill_worker("w1")
            for thread in threads:
                thread.join(timeout=30)
            assert not any(thread.is_alive() for thread in threads), (
                "a caller hung on an unresolved future"
            )
            assert not errors, errors  # w2 survived: both must be retried onto it
            assert results == {"a": {"slept": 1.2}, "b": {"slept": 1.2}}
            assert pool.stats().retries >= 1

    def test_task_timeout_kills_and_respawns(self):
        with WorkerPool(1, heartbeat_interval=0.2) as pool:
            with pytest.raises(TaskTimeout, match="exceeded"):
                pool.call("sleep", {"seconds": 30}, timeout=0.5, retries=0)
            _wait_healthy(pool, 1)
            assert pool.call("ping")["worker"] == "w0"

    def test_exhausted_restart_budget_retires_the_slot(self):
        with WorkerPool(1, max_restarts=0, heartbeat_interval=0.2) as pool:
            with pytest.raises(WorkerDied):
                pool.call("crash", retries=0)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and not pool.stats().workers["w0"]["retired"]:
                time.sleep(0.05)
            assert pool.stats().workers["w0"]["retired"] is True
            with pytest.raises(ClusterUnavailable):
                pool.call("ping", retries=0)

    def test_heartbeat_detects_a_silently_wedged_worker(self):
        with WorkerPool(
            1, heartbeat_interval=0.2, heartbeat_timeout=1.0
        ) as pool:
            pid = pool.call("ping")["pid"]
            os.kill(pid, signal.SIGSTOP)  # wedged: alive but unresponsive
            try:
                # Watch supervision state only: a call would park a pending
                # op on the wedged worker, and the heartbeat deliberately
                # never probes busy workers.
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline:
                    slot = pool.stats().workers["w0"]
                    if slot["healthy"] and slot["pid"] not in (None, pid):
                        break
                    time.sleep(0.1)
                else:
                    raise AssertionError("heartbeat never replaced the wedged worker")
                assert pool.call("ping")["pid"] != pid
            finally:
                try:
                    os.kill(pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass


class TestWorkerProcess:
    def test_protocol_version_mismatch_answered_loudly(self):
        process = _spawn_worker()
        try:
            process.stdin.write(b'{"v": 999, "id": 5, "op": "ping"}\n')
            process.stdin.flush()
            reply = decode_message(process.stdout.readline())
            assert reply["ok"] is False
            assert reply["error_type"] == "ProtocolError"
            assert reply["id"] == -1  # unversioned garbage has no trusted id
        finally:
            process.kill()
            process.wait(timeout=10)

    def test_sigterm_while_idle_exits_promptly(self):
        process = _spawn_worker()
        try:
            # First answer proves the loop is up before we signal it.
            process.stdin.write(encode_message(request(1, "ping")))
            process.stdin.flush()
            decode_message(process.stdout.readline())
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=10) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    def test_sigterm_mid_op_drains_the_response_first(self):
        process = _spawn_worker()
        try:
            # Prove the loop (and its signal handlers) are up before timing
            # a signal against the op.
            process.stdin.write(encode_message(request(0, "ping")))
            process.stdin.flush()
            decode_message(process.stdout.readline())
            process.stdin.write(encode_message(request(1, "sleep", {"seconds": 1.0})))
            process.stdin.flush()
            time.sleep(0.3)  # the sleep op is now executing
            process.send_signal(signal.SIGTERM)
            reply = decode_message(process.stdout.readline())
            assert reply == {
                "v": PROTOCOL_VERSION,
                "id": 1,
                "ok": True,
                "result": {"slept": 1.0},
            }
            assert process.wait(timeout=10) == 0  # ...and then it exited
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
