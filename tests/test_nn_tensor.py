"""Tests for the autograd tensor engine, including numerical gradient checks."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import Tensor, concatenate, sparse_matmul, stack, where
from repro.nn.tensor import _unbroadcast


def numerical_gradient(func, value: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``func`` at ``value``."""
    gradient = np.zeros_like(value, dtype=np.float64)
    flat = value.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = func(value)
        flat[index] = original - eps
        minus = func(value)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return gradient


def check_gradient(build_loss, shape, seed=0, atol=1e-5):
    """Compare autograd gradients against numerical differentiation."""
    rng = np.random.default_rng(seed)
    value = rng.normal(size=shape)
    tensor = Tensor(value.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    analytic = tensor.grad

    def scalar(array):
        return build_loss(Tensor(array)).item()

    numeric = numerical_gradient(scalar, value.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestBasicOps:
    def test_addition_values(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        np.testing.assert_allclose((a + b).numpy(), [4.0, 6.0])

    def test_scalar_addition(self):
        a = Tensor([1.0, 2.0])
        np.testing.assert_allclose((a + 1.0).numpy(), [2.0, 3.0])
        np.testing.assert_allclose((1.0 + a).numpy(), [2.0, 3.0])

    def test_subtraction_and_negation(self):
        a = Tensor([3.0, 5.0])
        b = Tensor([1.0, 2.0])
        np.testing.assert_allclose((a - b).numpy(), [2.0, 3.0])
        np.testing.assert_allclose((-a).numpy(), [-3.0, -5.0])
        np.testing.assert_allclose((10.0 - a).numpy(), [7.0, 5.0])

    def test_multiplication_and_division(self):
        a = Tensor([2.0, 4.0])
        b = Tensor([4.0, 8.0])
        np.testing.assert_allclose((a * b).numpy(), [8.0, 32.0])
        np.testing.assert_allclose((b / a).numpy(), [2.0, 2.0])
        np.testing.assert_allclose((8.0 / a).numpy(), [4.0, 2.0])

    def test_power(self):
        a = Tensor([2.0, 3.0])
        np.testing.assert_allclose((a ** 2).numpy(), [4.0, 9.0])

    def test_matmul_values(self):
        a = Tensor(np.eye(2) * 2)
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose((a @ b).numpy(), [[2.0, 4.0], [6.0, 8.0]])

    def test_shape_properties(self):
        t = Tensor(np.zeros((3, 4)))
        assert t.shape == (3, 4)
        assert t.ndim == 2
        assert t.size == 12
        assert t.T.shape == (4, 3)

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        detached = (a * 2).detach()
        assert not detached.requires_grad

    def test_item_requires_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_requires_scalar_without_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            t.backward()


class TestGradients:
    def test_add_mul_gradient(self):
        check_gradient(lambda x: ((x * 3.0 + 1.0) * x).sum(), (4, 3))

    def test_matmul_gradient(self):
        rng = np.random.default_rng(1)
        other = rng.normal(size=(3, 5))
        check_gradient(lambda x: (x @ Tensor(other)).sum(), (4, 3))

    def test_matmul_gradient_right_operand(self):
        rng = np.random.default_rng(2)
        left = rng.normal(size=(5, 4))
        check_gradient(lambda x: (Tensor(left) @ x).sum(), (4, 3))

    def test_division_gradient(self):
        check_gradient(lambda x: (1.0 / (x * x + 2.0)).sum(), (3, 3))

    def test_exp_log_gradient(self):
        check_gradient(lambda x: ((x.exp() + 2.0).log()).sum(), (4,))

    def test_relu_gradient(self):
        # Shift away from zero to avoid the non-differentiable kink.
        check_gradient(lambda x: ((x + 0.3).relu() * 2.0).sum(), (5, 2))

    def test_tanh_sigmoid_gradient(self):
        check_gradient(lambda x: (x.tanh() * x.sigmoid()).sum(), (6,))

    def test_elu_gradient(self):
        check_gradient(lambda x: (x.elu()).sum(), (8,))

    def test_leaky_relu_gradient(self):
        check_gradient(lambda x: ((x + 0.29).leaky_relu(0.1)).sum(), (7,))

    def test_softmax_gradient(self):
        check_gradient(lambda x: (x.softmax(axis=1) * Tensor(np.arange(12.0).reshape(4, 3))).sum(), (4, 3))

    def test_log_softmax_gradient(self):
        check_gradient(lambda x: (x.log_softmax(axis=1)[:, 0]).sum(), (4, 3))

    def test_sum_axis_gradient(self):
        check_gradient(lambda x: (x.sum(axis=0) ** 2).sum(), (3, 4))

    def test_mean_gradient(self):
        check_gradient(lambda x: (x.mean(axis=1) ** 2).sum(), (3, 4))

    def test_max_gradient(self):
        rng = np.random.default_rng(3)
        value = rng.normal(size=(4, 3))
        tensor = Tensor(value, requires_grad=True)
        loss = tensor.max(axis=1).sum()
        loss.backward()
        # Each row contributes exactly one unit of gradient.
        np.testing.assert_allclose(tensor.grad.sum(axis=1), np.ones(4))

    def test_getitem_gradient(self):
        check_gradient(lambda x: (x[1:3] * 2.0).sum(), (5, 2))

    def test_transpose_reshape_gradient(self):
        check_gradient(lambda x: (x.T.reshape(6) * 3.0).sum(), (2, 3))

    def test_abs_gradient(self):
        check_gradient(lambda x: (x + 0.4).abs().sum(), (6,))

    def test_broadcast_add_gradient(self):
        rng = np.random.default_rng(4)
        bias = rng.normal(size=(3,))
        check_gradient(lambda x: ((x + Tensor(bias)) ** 2).sum(), (4, 3))

    def test_broadcast_bias_gradient(self):
        rng = np.random.default_rng(5)
        matrix = rng.normal(size=(4, 3))

        def loss(bias):
            return ((Tensor(matrix) + bias) ** 2).sum()

        check_gradient(loss, (3,))

    def test_gradient_accumulation_over_reuse(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x + x * 3.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])


class TestFreeFunctions:
    def test_concatenate_values_and_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.full((2, 3), 2.0), requires_grad=True)
        merged = concatenate([a, b], axis=1)
        assert merged.shape == (2, 5)
        (merged * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))

    def test_stack_values_and_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.full(3, 2.0), requires_grad=True)
        stacked = stack([a, b], axis=0)
        assert stacked.shape == (2, 3)
        stacked.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_sparse_matmul_values(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [2.0, 0.0]]))
        dense = Tensor(np.array([[1.0, 1.0], [2.0, 2.0]]))
        result = sparse_matmul(matrix, dense)
        np.testing.assert_allclose(result.numpy(), [[2.0, 2.0], [2.0, 2.0]])

    def test_sparse_matmul_gradient(self):
        matrix = sp.random(6, 6, density=0.4, random_state=0, format="csr")

        def loss(x):
            return (sparse_matmul(matrix, x) ** 2).sum()

        check_gradient(loss, (6, 3))

    def test_sparse_matmul_rejects_dense(self):
        with pytest.raises(TypeError):
            sparse_matmul(np.eye(2), Tensor(np.ones((2, 2))))

    def test_where_selects_and_routes_gradient(self):
        condition = np.array([True, False, True])
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([10.0, 20.0, 30.0], requires_grad=True)
        out = where(condition, a, b)
        np.testing.assert_allclose(out.numpy(), [1.0, 20.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])

    def test_unbroadcast_restores_shape(self):
        grad = np.ones((4, 3))
        reduced = _unbroadcast(grad, (3,))
        np.testing.assert_allclose(reduced, np.full(3, 4.0))
        reduced_keepdim = _unbroadcast(grad, (1, 3))
        assert reduced_keepdim.shape == (1, 3)
