"""Shared fixtures for the test suite.

Small, seeded graphs are built once per session so individual tests stay
fast; anything that mutates a graph must copy it first (the transforms all
return new objects, so this is only a concern for tests poking at arrays
directly).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph.digraph import DirectedGraph
from repro.graph.generators import DSBMConfig, directed_sbm
from repro.graph.splits import per_class_split, ratio_split


@pytest.fixture(scope="session")
def tiny_graph() -> DirectedGraph:
    """A 6-node hand-built digraph with known structure (Fig. 3 flavour)."""
    edges = np.array(
        [
            [0, 3],  # 0 -> 3
            [1, 3],  # 1 -> 3
            [2, 3],  # 2 -> 3
            [4, 0],  # 4 -> 0
            [4, 1],  # 4 -> 1
            [4, 2],  # 4 -> 2
            [3, 5],  # 3 -> 5
        ]
    )
    adjacency = sp.csr_matrix(
        (np.ones(len(edges)), (edges[:, 0], edges[:, 1])), shape=(6, 6)
    )
    rng = np.random.default_rng(0)
    features = rng.normal(size=(6, 4))
    labels = np.array([0, 0, 0, 1, 1, 0])
    return DirectedGraph(adjacency=adjacency, features=features, labels=labels, name="tiny")


@pytest.fixture(scope="session")
def homophilous_graph() -> DirectedGraph:
    """A small homophilous digraph with a planetoid-style split."""
    config = DSBMConfig(
        num_nodes=300,
        num_classes=4,
        avg_degree=4.0,
        feature_dim=16,
        homophily=0.8,
        directional_asymmetry=0.1,
        feature_signal=0.5,
        name="homophilous-test",
    )
    graph = directed_sbm(config, seed=1)
    return per_class_split(graph, train_per_class=10, num_val=60, seed=1)


@pytest.fixture(scope="session")
def heterophilous_graph() -> DirectedGraph:
    """A small heterophilous digraph with strong directional structure."""
    config = DSBMConfig(
        num_nodes=300,
        num_classes=4,
        avg_degree=6.0,
        feature_dim=16,
        homophily=0.15,
        directional_asymmetry=0.9,
        feature_signal=0.3,
        name="heterophilous-test",
    )
    graph = directed_sbm(config, seed=2)
    return ratio_split(graph, train_ratio=0.5, val_ratio=0.25, seed=2)


@pytest.fixture(scope="session")
def fast_trainer():
    """A short training configuration shared by model smoke tests."""
    from repro.training import Trainer

    return Trainer(epochs=30, patience=10)
