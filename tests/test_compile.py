"""Traced grad-free inference kernels: compile, replay, spill and fallback.

The contract under test is bit-identity — a compiled program's logits must
be ``np.array_equal`` to the eager forward for every registry model — plus
the operational envelope around it: fold policies, the fingerprint-keyed
:class:`TraceCache` with its ``.npz`` spill/warm round-trip, transparent
engine integration with eager fallback, and the shared stats protocol.
"""

import numpy as np
import pytest

from repro.api import ServeConfig, Session, TrainConfig
from repro.datasets import load_dataset
from repro.models import available_models, create_model
from repro.models.mlp import MLPClassifier
from repro.serving import (
    COMPILE_MODES,
    FOLD_MODES,
    InferenceServer,
    LRUCache,
    OperatorCache,
    TraceCache,
    TraceError,
    compile_forward,
    preprocess_key,
)
from repro.serving.stats import Stats, StatsSource


@pytest.fixture(scope="module")
def texas():
    return load_dataset("texas", seed=0)


class TestTraceEagerEquivalence:
    @pytest.mark.parametrize("name", available_models())
    def test_compiled_logits_bit_identical_to_eager(self, name, texas):
        model = create_model(name, texas, seed=0)
        cache = model.preprocess(texas)
        eager = model.predict_logits(texas, cache)
        program = compile_forward(model, texas, cache)
        assert np.array_equal(program.run(cache=cache, model=model), eager)

    @pytest.mark.parametrize("fold", FOLD_MODES)
    def test_every_fold_policy_is_bit_identical(self, fold, texas):
        model = create_model("GCN", texas, seed=0)
        cache = model.preprocess(texas)
        eager = model.predict_logits(texas, cache)
        program = compile_forward(model, texas, cache, fold=fold)
        assert program.fold == fold
        assert np.array_equal(program.run(cache=cache, model=model), eager)

    def test_full_fold_collapses_the_program(self, texas):
        # fold="all" freezes weights and graph operators: the replay is a
        # validated constant, no steps left to interpret.
        model = create_model("MLP", texas, seed=0)
        program = compile_forward(model, texas, fold="all")
        assert program.steps == [] and len(program.constants) == 1
        assert program.num_recorded > 0

    def test_weight_fold_rebinds_the_preprocess_cache(self, texas):
        model = create_model("MLP", texas, seed=0)
        cache = model.preprocess(texas)
        program = compile_forward(model, texas, cache, fold="weights")
        assert any(path.startswith("cache:") for path in program.input_paths)
        # Re-binding different features through the same program must flow
        # through, not replay a stale constant.
        shifted = load_dataset("texas", seed=0)
        shifted = shifted.with_(features=shifted.features + 1.0)
        shifted_cache = model.preprocess(shifted)
        fresh = model.predict_logits(shifted, shifted_cache)
        assert np.array_equal(program.run(cache=shifted_cache, model=model), fresh)

    def test_replay_survives_weight_mutation_detection(self, texas):
        # fold="none" re-reads parameters at run time, so updated weights
        # change the replayed logits exactly like the eager path.
        model = create_model("MLP", texas, seed=0)
        cache = model.preprocess(texas)
        program = compile_forward(model, texas, cache, fold="none")
        for _, parameter in model.named_parameters():
            parameter.data = parameter.data + 0.25
        assert np.array_equal(
            program.run(cache=cache, model=model), model.predict_logits(texas, cache)
        )

    def test_program_describe_reports_compression(self, texas):
        model = create_model("GCN", texas, seed=0)
        description = compile_forward(model, texas).describe()
        assert description["recorded_ops"] >= description["steps"]
        assert description["fold"] == "all"


class TestTraceCache:
    def test_compile_and_store_round_trip(self, texas):
        model = create_model("SGC", texas, seed=0)
        operators = OperatorCache()
        graph_cache = operators.preprocess(model, texas)
        traces = TraceCache(capacity=4)
        program = traces.compile_and_store(model, texas, graph_cache)
        assert traces.get(preprocess_key(model, texas)) is program
        stats = traces.stats()
        assert stats.compiles == 1 and stats.fallbacks == 0

    def test_spill_and_warm_round_trip(self, texas, tmp_path):
        model = create_model("GCN", texas, seed=0)
        graph_cache = model.preprocess(texas)
        eager = model.predict_logits(texas, graph_cache)

        traces = TraceCache(capacity=4)
        program = traces.compile_and_store(model, texas, graph_cache, fold="weights")
        assert traces.spill(tmp_path / "traces") == 1

        warmed = TraceCache(capacity=4)
        assert warmed.warm(tmp_path / "traces") == 1
        restored = warmed.get(program.key)
        assert restored is not None
        assert restored.weights_version == program.weights_version
        assert np.array_equal(restored.run(cache=graph_cache, model=model), eager)

    def test_warm_ignores_operator_cache_spills(self, texas, tmp_path):
        # Trace and operator spills share one codec but are tagged by kind;
        # warming the wrong directory must not cross-load entries.
        model = create_model("MLP", texas, seed=0)
        operators = OperatorCache()
        operators.preprocess(model, texas)
        operators.spill(tmp_path / "ops")
        assert TraceCache().warm(tmp_path / "ops") == 0
        traces = TraceCache()
        traces.compile_and_store(model, texas)
        traces.spill(tmp_path / "traces")
        assert OperatorCache().warm(tmp_path / "traces") == 0

    def test_warm_missing_directory_is_a_noop(self, tmp_path):
        assert TraceCache().warm(tmp_path / "absent") == 0


def _served_logits(server):
    ticket = server.submit()
    ticket.result(timeout=60)
    return ticket.logits


class _OpaqueMLP(MLPClassifier):
    """An MLP whose last op carries no trace metadata — untraceable."""

    def forward(self, cache):
        out = super().forward(cache)
        # op=None: eager autograd still works, the tracer must refuse.
        return out._make(out.data * 1.0, (out,), lambda grad: (grad,))


class TestEngineIntegration:
    def test_server_answers_cache_misses_from_the_compiled_program(self, texas):
        model = create_model("MLP", texas, seed=0)
        eager = model.predict_logits(texas)
        server = InferenceServer(
            model, texas, compile="trace", cache_logits=False, max_wait_ms=0.0
        )
        with server:
            first = _served_logits(server)
            second = _served_logits(server)
        assert np.array_equal(first, eager) and np.array_equal(second, eager)
        trace_stats = server.trace_cache.stats()
        assert trace_stats.compiles == 1
        assert trace_stats.hits >= 1 and trace_stats.fallbacks == 0

    def test_untraceable_model_falls_back_to_eager(self, texas):
        model = _OpaqueMLP(
            num_features=texas.num_features, num_classes=texas.num_classes, seed=0
        )
        with pytest.raises(TraceError):
            compile_forward(model, texas)
        eager = model.predict_logits(texas)
        server = InferenceServer(
            model, texas, compile="auto", cache_logits=False, max_wait_ms=0.0
        )
        with server:
            answered = _served_logits(server)
            answered_again = _served_logits(server)
        assert np.array_equal(answered, eager) and np.array_equal(answered_again, eager)
        trace_stats = server.trace_cache.stats()
        assert trace_stats.fallbacks >= 1 and trace_stats.compiles == 0

    def test_eager_mode_allocates_no_trace_cache(self, texas):
        model = create_model("MLP", texas, seed=0)
        server = InferenceServer(model, texas, compile="eager")
        assert server.trace_cache is None
        assert server.stats().trace is None
        with server:
            assert np.array_equal(_served_logits(server), model.predict_logits(texas))

    def test_compile_mode_is_validated(self, texas):
        model = create_model("MLP", texas, seed=0)
        with pytest.raises(ValueError, match="compile"):
            InferenceServer(model, texas, compile="sometimes")
        with pytest.raises(ValueError, match="compile"):
            ServeConfig(compile="sometimes")
        assert set(COMPILE_MODES) == {"auto", "eager", "trace"}

    def test_serve_config_plumbs_compile_through_session(self, texas):
        handle = Session(train=TrainConfig(epochs=2, patience=2)).from_graph(texas).fit("MLP")
        eager = handle.predict_logits()
        config = ServeConfig(compile="trace", cache_logits=False, max_wait_ms=0.0)
        with handle.serve(config) as server:
            assert np.array_equal(_served_logits(server), eager)
        assert server.stats().trace.compiles == 1


class TestStatsProtocol:
    def test_every_stats_source_snapshot_matches_as_dict(self, texas):
        model = create_model("MLP", texas, seed=0)
        sources = [LRUCache(capacity=2), OperatorCache(), TraceCache()]
        server = InferenceServer(model, texas)
        sources.append(server)
        for source in sources:
            assert isinstance(source, StatsSource)
            assert isinstance(source.stats(), Stats)
            assert source.snapshot() == source.stats().as_dict()

    def test_trace_counters_ride_the_cache_stats_shape(self, texas):
        model = create_model("MLP", texas, seed=0)
        traces = TraceCache(capacity=4)
        traces.compile_and_store(model, texas)
        traces.note_fallback()
        snapshot = traces.snapshot()
        for key in ("hits", "misses", "hit_rate", "compiles", "fallbacks"):
            assert key in snapshot
        assert snapshot["compiles"] == 1 and snapshot["fallbacks"] == 1

    def test_server_snapshot_nests_component_dicts(self, texas):
        model = create_model("MLP", texas, seed=0)
        server = InferenceServer(model, texas, compile="trace")
        snapshot = server.snapshot()
        assert snapshot["cache"]["hits"] == 0
        assert snapshot["logit_cache"]["capacity"] > 0
        assert snapshot["trace"]["compiles"] == 0

    def test_lru_entries_lists_pairs(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.entries() == [("a", 1), ("b", 2)]
