"""The public ``repro.api`` facade: configs, Session/handle chains,
artifact round-trips and the legacy deprecation shims."""

import dataclasses
import json

import numpy as np
import pytest

from repro.api import AmudConfig, ModelHandle, ServeConfig, Session, TrainConfig, width_kwargs
from repro.api.session import decision_to_dict, train_result_to_dict
from repro.cli import main as cli_main
from repro.serving import save_model
from repro.training import Trainer

QUICK = TrainConfig(epochs=5, patience=5)

#: a cross-section of the registry: spatial/spectral, undirected/directed,
#: the SGC no-hidden special case and the lazily-built ADPA.
ROUND_TRIP_MODELS = ["MLP", "SGC", "GCN", "GPRGNN", "DirGNN", "ADPA"]


class TestConfigs:
    def test_configs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            TrainConfig().lr = 1.0
        with pytest.raises(dataclasses.FrozenInstanceError):
            AmudConfig().threshold = 0.9
        with pytest.raises(dataclasses.FrozenInstanceError):
            ServeConfig().max_batch_size = 2

    def test_replace_returns_new_config(self):
        base = TrainConfig()
        quick = base.replace(epochs=3)
        assert quick.epochs == 3 and base.epochs == 200

    def test_validation(self):
        with pytest.raises(ValueError, match="epochs"):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError, match="optimizer"):
            TrainConfig(optimizer="lbfgs")
        with pytest.raises(KeyError):
            AmudConfig(directed_model="NotAModel")
        with pytest.raises(ValueError, match="NaN"):
            AmudConfig(threshold=float("nan"))
        with pytest.raises(ValueError, match="max_batch_size"):
            ServeConfig(max_batch_size=0)
        with pytest.raises(ValueError, match="router_max_pending"):
            ServeConfig(router_max_pending=0)

    def test_train_config_round_trips_through_trainer(self):
        config = TrainConfig(lr=0.05, epochs=17, patience=4, optimizer="sgd")
        assert TrainConfig.from_trainer(config.build_trainer()) == config

    def test_serve_config_kwargs_cover_engine_and_router(self):
        config = ServeConfig(max_batch_size=8, max_wait_ms=1.0, max_pending=4)
        assert config.engine_kwargs()["max_pending"] == 4
        assert config.router_kwargs()["max_pending"] == config.router_max_pending

    def test_width_kwargs_sgc_special_case(self):
        assert width_kwargs("SGC", 64) == {}
        assert width_kwargs("MLP", 64) == {"hidden": 64}

    def test_configs_json_serialisable(self):
        for config in (TrainConfig(), AmudConfig(), ServeConfig()):
            assert json.loads(json.dumps(config.as_dict())) == config.as_dict()


class TestSessionChain:
    def test_load_amud_fit_follows_guidance(self):
        guided = Session(train=QUICK).load("texas").amud()
        assert guided.decision is not None and guided.decision.keep_directed
        model = guided.fit()
        assert model.model_name == "ADPA"
        assert model.decision is guided.decision
        assert 0.0 <= model.test_accuracy <= 1.0

    def test_fit_without_amud_runs_guidance_implicitly(self):
        model = Session(train=QUICK).load("texas").fit()
        assert model.decision is not None
        assert model.model_name == "ADPA"

    def test_explicit_model_skips_guidance(self):
        model = Session(train=QUICK).load("texas").fit("MLP", hidden=8)
        assert model.model_name == "MLP"
        assert model.decision is None

    def test_fit_unknown_model_fails_fast(self):
        handle = Session(train=QUICK).load("texas")
        with pytest.raises(KeyError, match="NotAModel"):
            handle.fit("NotAModel")

    def test_undirected_view_symmetrises(self):
        handle = Session().load("texas")
        undirected = handle.undirected()
        adjacency = undirected.graph.adjacency
        assert (adjacency != adjacency.T).nnz == 0

    def test_amud_config_overrides_paradigm_models(self):
        config = AmudConfig(directed_model="DirGNN", undirected_model="SGC")
        model = Session(train=QUICK, amud=config).load("texas").fit(hidden=8)
        assert model.model_name == "DirGNN"

    def test_amud_call_config_carries_through_to_fit(self):
        # A config passed to amud() must drive the subsequent fit() too,
        # not silently fall back to the session default (ADPA).
        config = AmudConfig(directed_model="DirGNN", undirected_model="SGC")
        model = Session(train=QUICK).load("texas").amud(config).fit(hidden=8)
        assert model.model_name == "DirGNN"

    def test_trainer_instance_accepted_for_legacy_call_sites(self):
        model = Session().load("texas").fit("MLP", train=Trainer(epochs=2, patience=2), hidden=8)
        assert model.train_result.epochs_run <= 2

    def test_from_graph_wraps_custom_data(self):
        graph = Session().load("cornell").graph
        handle = Session(train=QUICK).from_graph(graph)
        assert handle.graph is graph
        assert "edge" in handle.homophily()


class TestArtifactRoundTrips:
    @pytest.mark.parametrize("model_name", ROUND_TRIP_MODELS)
    def test_fit_save_restore_predict_bit_exact(self, model_name, tmp_path):
        session = Session(train=QUICK)
        model = session.load("texas").fit(model_name, **width_kwargs(model_name, 8))
        expected = model.predict()

        directory = tmp_path / model_name
        model.save(directory)
        restored = Session().restore(directory)
        assert isinstance(restored, ModelHandle)
        assert restored.model_name == model.model_name
        np.testing.assert_array_equal(restored.predict(), expected)
        np.testing.assert_array_equal(
            restored.predict_logits(), model.predict_logits()
        )

    def test_restore_recovers_decision_and_train_result(self, tmp_path):
        model = Session(train=QUICK).load("texas").amud().fit()
        model.save(tmp_path / "art")
        restored = Session().restore(tmp_path / "art")
        assert restored.decision.keep_directed == model.decision.keep_directed
        assert restored.decision.score == pytest.approx(model.decision.score)
        assert restored.train_result.test_accuracy == pytest.approx(model.test_accuracy)

    def test_restore_reads_legacy_pipeline_artifacts(self, tmp_path):
        # The AmudPipeline facade is gone, but its artifacts must stay
        # loadable: recreate the exact on-disk shape its save() wrote.
        model = Session(train=QUICK).load("texas").amud().fit()
        save_model(
            model.model,
            tmp_path / "legacy",
            metadata={
                "kind": "amud-pipeline",
                "pipeline": {
                    "undirected_model": "GPRGNN",
                    "directed_model": "ADPA",
                    "threshold": 0.5,
                    "seed": 0,
                    "model_kwargs": {},
                    "trainer": {
                        "lr": 0.01, "weight_decay": 5e-4, "epochs": 5,
                        "patience": 5, "optimizer": "adam",
                    },
                },
                "model_name": model.model_name,
                "decision": decision_to_dict(model.decision),
                "train_result": train_result_to_dict(model.train_result),
            },
            graph=model.graph,
        )
        restored = Session().restore(tmp_path / "legacy")
        np.testing.assert_array_equal(restored.predict(), model.predict())
        assert restored.decision is not None
        assert restored.decision.keep_directed == model.decision.keep_directed

    def test_serve_single_handle(self, tmp_path):
        model = Session(train=QUICK).load("texas").fit("MLP", hidden=8)
        expected = model.predict()
        with model.serve() as server:
            np.testing.assert_array_equal(server.predict(node_ids=[0, 1, 2]), expected[:3])


class TestCliArtifactErrors:
    def test_predict_missing_artifact_exits_2(self, tmp_path, capsys):
        assert cli_main(["predict", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert "cannot load serving artifact" in err and "repro export" in err

    def test_predict_corrupt_manifest_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "artifact.json").write_text("{not json")
        assert cli_main(["predict", str(bad)]) == 2
        assert "cannot load serving artifact" in capsys.readouterr().err

    def test_predict_corrupt_weights_exits_2(self, tmp_path, capsys):
        art = tmp_path / "art"
        model = Session(train=QUICK).load("texas").fit("MLP", hidden=8)
        model.save(art)
        (art / "weights.npz").write_bytes(b"this is not an npz payload")
        assert cli_main(["predict", str(art)]) == 2
        assert "cannot load serving artifact" in capsys.readouterr().err

    def test_serve_bench_missing_artifact_exits_2(self, tmp_path, capsys):
        assert cli_main(["serve-bench", str(tmp_path / "nope")]) == 2
        assert "cannot load serving artifact" in capsys.readouterr().err

    def test_predict_wrong_format_version_exits_2(self, tmp_path, capsys):
        art = tmp_path / "art"
        model = Session(train=QUICK).load("texas").fit("MLP", hidden=8)
        model.save(art)
        manifest = json.loads((art / "artifact.json").read_text())
        manifest["format_version"] = 99
        (art / "artifact.json").write_text(json.dumps(manifest))
        assert cli_main(["predict", str(art)]) == 2
        assert "unsupported artifact version" in capsys.readouterr().err
