"""Tests for the Prometheus text exposition renderer and strict parser."""

from __future__ import annotations

import math

import pytest

from repro.obs import (
    BUCKET_COUNT,
    LatencyHistogram,
    PrometheusParseError,
    escape_help,
    escape_label_value,
    format_value,
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
)


class TestEscaping:
    def test_label_value_escapes_backslash_quote_newline(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_help_escapes_backslash_and_newline_only(self):
        assert escape_help("a\nb\\c") == "a\\nb\\\\c"
        assert escape_help('quotes " stay') == 'quotes " stay'

    def test_escaped_label_round_trips_through_the_parser(self):
        tricky = 'sh"ard\\one\nx'
        text = (
            "# TYPE demo counter\n"
            f'demo{{name="{escape_label_value(tricky)}"}} 1\n'
        )
        families = parse_prometheus(text)
        samples = families["demo"]["samples"]
        assert samples == [("demo", {"name": tricky}, 1.0)]

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("a-b.c/d") == "a_b_c_d"
        assert sanitize_metric_name("9lives").startswith("_")

    def test_format_value_specials(self):
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(math.nan) == "NaN"
        assert format_value(3) == "3"
        assert format_value(True) == "1"


class TestRender:
    def test_counters_get_total_suffix_gauges_do_not(self):
        text = render_prometheus({"requests": 5, "max_pending": 7}, prefix="t")
        families = parse_prometheus(text)
        assert families["t_requests_total"]["type"] == "counter"
        assert families["t_max_pending"]["type"] == "gauge"
        assert ("t_requests_total", {}, 5.0) in families["t_requests_total"]["samples"]

    def test_histogram_expands_to_bucket_series(self):
        histogram = LatencyHistogram()
        for value in (0.5, 2.0, 80.0):
            histogram.record(value)
        text = render_prometheus({"latency": histogram.snapshot()}, prefix="t")
        families = parse_prometheus(text)
        family = families["t_latency_ms"]
        assert family["type"] == "histogram"
        buckets = [s for s in family["samples"] if s[0] == "t_latency_ms_bucket"]
        assert len(buckets) == BUCKET_COUNT
        assert buckets[-1][1]["le"] == "+Inf"
        assert buckets[-1][2] == 3.0
        count = [s for s in family["samples"] if s[0] == "t_latency_ms_count"]
        assert count[0][2] == 3.0

    def test_shards_become_a_label_dimension(self):
        snapshot = {
            "shards": {
                "texas": {"requests": 3},
                "we\"ird": {"requests": 1},
            }
        }
        text = render_prometheus(snapshot, prefix="t")
        families = parse_prometheus(text)
        samples = families["t_shard_requests_total"]["samples"]
        labels = {frozenset(s[1].items()) for s in samples}
        assert frozenset({("shard", "texas")}) in labels
        assert frozenset({("shard", 'we"ird')}) in labels

    def test_strings_and_none_are_skipped(self):
        text = render_prometheus({"name": "texas", "trace": None, "requests": 1}, prefix="t")
        families = parse_prometheus(text)
        assert set(families) == {"t_requests_total"}

    def test_router_snapshot_renders_and_parses(self, homophilous_graph):
        from repro.models.registry import create_model
        from repro.serving import ShardRouter
        from repro.training import Trainer

        model = create_model("MLP", homophilous_graph, seed=0, hidden=8)
        Trainer(epochs=2, patience=5).fit(model, homophilous_graph)
        router = ShardRouter()
        router.add_shard(model, homophilous_graph, name="main")
        with router:
            router.predict(node_ids=[0, 1, 2], shard="main")
        text = render_prometheus(router.snapshot(), prefix="repro_router")
        families = parse_prometheus(text)
        assert families["repro_router_submitted_total"]["type"] == "counter"
        # The merged router histogram and the per-shard one both render.
        assert families["repro_router_latency_ms"]["type"] == "histogram"
        shard_latency = families["repro_router_shard_latency_ms"]["samples"]
        assert any(s[1].get("shard") == "main" for s in shard_latency)
        # The per-request preprocess histogram nests two levels down.
        assert "repro_router_shard_cache_preprocess_latency_ms" in families


class TestParser:
    def test_rejects_malformed_sample(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus("this is not a sample\n")

    def test_rejects_unknown_type(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus("# TYPE t wibble\n")

    def test_rejects_unterminated_label(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus('# TYPE t counter\nt{a="b} 1\n')

    def test_rejects_non_cumulative_histogram(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_count 5\n"
        )
        with pytest.raises(PrometheusParseError, match="cumulative"):
            parse_prometheus(text)

    def test_rejects_histogram_without_inf_bucket(self):
        text = "# TYPE h histogram\n" 'h_bucket{le="1"} 5\n' "h_count 5\n"
        with pytest.raises(PrometheusParseError, match=r"\+Inf"):
            parse_prometheus(text)

    def test_rejects_inf_bucket_disagreeing_with_count(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_count 5\n"
        )
        with pytest.raises(PrometheusParseError, match="_count"):
            parse_prometheus(text)

    def test_accepts_arbitrary_comments(self):
        families = parse_prometheus("# just a note\n# TYPE t gauge\nt 1\n")
        assert families["t"]["samples"] == [("t", {}, 1.0)]
