"""Tests for graph persistence (npz round-trip) and the command-line interface."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.graph.io import load_graph, save_graph


class TestGraphIO:
    def test_roundtrip_preserves_everything(self, homophilous_graph, tmp_path):
        path = save_graph(homophilous_graph, tmp_path / "graph.npz")
        loaded = load_graph(path)
        np.testing.assert_array_equal(
            loaded.adjacency.toarray(), homophilous_graph.adjacency.toarray()
        )
        np.testing.assert_array_equal(loaded.features, homophilous_graph.features)
        np.testing.assert_array_equal(loaded.labels, homophilous_graph.labels)
        np.testing.assert_array_equal(loaded.train_mask, homophilous_graph.train_mask)
        np.testing.assert_array_equal(loaded.val_mask, homophilous_graph.val_mask)
        np.testing.assert_array_equal(loaded.test_mask, homophilous_graph.test_mask)
        assert loaded.name == homophilous_graph.name
        assert loaded.meta["generator"] == "directed_sbm"

    def test_roundtrip_without_splits(self, tiny_graph, tmp_path):
        path = save_graph(tiny_graph, tmp_path / "tiny")
        assert path.suffix == ".npz"
        loaded = load_graph(path)
        assert loaded.train_mask is None
        assert loaded.num_edges == tiny_graph.num_edges

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph(tmp_path / "nope.npz")

    def test_directory_created(self, tiny_graph, tmp_path):
        nested = tmp_path / "a" / "b" / "graph.npz"
        save_graph(tiny_graph, nested)
        assert nested.exists()


class TestCLI:
    def test_datasets_listing(self, capsys):
        assert cli_main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "coraml" in out and "squirrel" in out

    def test_models_listing(self, capsys):
        assert cli_main(["models"]) == 0
        out = capsys.readouterr().out
        assert "ADPA" in out and "GCN" in out

    def test_models_listing_filtered(self, capsys):
        assert cli_main(["models", "--category", "directed-spatial"]) == 0
        out = capsys.readouterr().out
        assert "DirGNN" in out
        assert not any(line.startswith("GCN ") for line in out.splitlines())

    def test_amud_command(self, capsys):
        assert cli_main(["amud", "texas"]) == 0
        out = capsys.readouterr().out
        assert "guidance score" in out
        assert "model as directed" in out

    def test_amud_command_undirected_dataset(self, capsys):
        assert cli_main(["amud", "citeseer"]) == 0
        out = capsys.readouterr().out
        assert "model as undirected" in out

    def test_train_command_single_model(self, capsys):
        code = cli_main(
            ["train", "texas", "--model", "MLP", "--epochs", "10", "--patience", "5", "--hidden", "16"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "test accuracy" in out

    def test_train_command_undirected_view(self, capsys):
        code = cli_main(
            ["train", "texas", "--model", "SGC", "--epochs", "5", "--patience", "5", "--undirected"]
        )
        assert code == 0
        assert "U-" in capsys.readouterr().out

    def test_train_command_pipeline(self, capsys):
        code = cli_main(
            ["train", "texas", "--epochs", "10", "--patience", "5", "--hidden", "16"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AMUD score" in out

    def test_train_unknown_model(self):
        with pytest.raises(KeyError):
            cli_main(["train", "texas", "--model", "NotAModel", "--epochs", "5"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["amud", "not-a-dataset"])
