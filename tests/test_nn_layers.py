"""Tests for nn layers, functional helpers, initialisers and optimisers."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BatchNorm,
    Dropout,
    LayerNorm,
    Linear,
    MLP,
    Module,
    Parameter,
    SGD,
    Sequential,
    Tensor,
)
from repro.nn import functional as F
from repro.nn import init


class TestInitializers:
    def test_glorot_bounds(self):
        rng = np.random.default_rng(0)
        weights = init.glorot_uniform((100, 50), rng)
        limit = np.sqrt(6.0 / 150)
        assert weights.shape == (100, 50)
        assert np.all(np.abs(weights) <= limit + 1e-12)

    def test_kaiming_bounds(self):
        rng = np.random.default_rng(0)
        weights = init.kaiming_uniform((64, 32), rng)
        limit = np.sqrt(6.0 / 64)
        assert np.all(np.abs(weights) <= limit + 1e-12)

    def test_zeros_ones(self):
        assert np.all(init.zeros((3, 3)) == 0)
        assert np.all(init.ones((2,)) == 1)

    def test_determinism_given_seed(self):
        a = init.glorot_uniform((10, 10), np.random.default_rng(7))
        b = init.glorot_uniform((10, 10), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(5, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.random.default_rng(1).normal(size=(7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias(self):
        layer = Linear(4, 2, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_flow_to_parameters(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((4, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, np.full(2, 4.0))


class TestModuleInfrastructure:
    def test_named_parameters_recursive(self):
        mlp = MLP(4, 8, 2, num_layers=2, rng=np.random.default_rng(0))
        names = [name for name, _ in mlp.named_parameters()]
        assert any("linears.0.weight" in name for name in names)
        assert any("linears.1.bias" in name for name in names)

    def test_num_parameters_counts_scalars(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        assert layer.num_parameters() == 3 * 2 + 2

    def test_state_dict_roundtrip(self):
        mlp = MLP(4, 8, 2, rng=np.random.default_rng(0))
        state = mlp.state_dict()
        for param in mlp.parameters():
            param.data = param.data + 1.0
        mlp.load_state_dict(state)
        for name, param in mlp.named_parameters():
            np.testing.assert_array_equal(param.data, state[name])

    def test_load_state_dict_rejects_unknown_keys(self):
        mlp = MLP(4, 8, 2, rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            mlp.load_state_dict({"nonexistent": np.zeros(3)})

    def test_train_eval_toggles_submodules(self):
        mlp = MLP(4, 8, 2, rng=np.random.default_rng(0))
        mlp.eval()
        assert not mlp.dropout.training
        mlp.train()
        assert mlp.dropout.training

    def test_zero_grad_clears_gradients(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        layer(Tensor(np.ones((2, 3)))).sum().backward()
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_sequential_runs_in_order(self):
        model = Sequential(Linear(4, 8, rng=np.random.default_rng(0)), Linear(8, 2, rng=np.random.default_rng(1)))
        out = model(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)
        assert len(model) == 2
        assert isinstance(model[0], Linear)


class TestDropoutAndNorms:
    def test_dropout_eval_is_identity(self):
        dropout = Dropout(0.5, rng=np.random.default_rng(0))
        dropout.training = False
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_array_equal(dropout(x).numpy(), x.numpy())

    def test_dropout_scales_kept_units(self):
        dropout = Dropout(0.5, rng=np.random.default_rng(0))
        out = dropout(Tensor(np.ones((2000,)))).numpy()
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        # roughly half survive
        assert 0.4 < kept.size / 2000 < 0.6

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), p=1.0, training=True)

    def test_layernorm_normalises_rows(self):
        norm = LayerNorm(6)
        x = Tensor(np.random.default_rng(0).normal(size=(5, 6)) * 10 + 3)
        out = norm(x).numpy()
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=1), 1.0, atol=1e-2)

    def test_batchnorm_train_vs_eval(self):
        norm = BatchNorm(4)
        x = Tensor(np.random.default_rng(0).normal(size=(50, 4)) * 3 + 1)
        out_train = norm(x).numpy()
        np.testing.assert_allclose(out_train.mean(axis=0), 0.0, atol=1e-6)
        norm.training = False
        out_eval = norm(x).numpy()
        assert out_eval.shape == (50, 4)


class TestMLP:
    def test_single_layer(self):
        mlp = MLP(4, 16, 3, num_layers=1, rng=np.random.default_rng(0))
        assert mlp(Tensor(np.ones((2, 4)))).shape == (2, 3)

    def test_deep_mlp_shapes(self):
        mlp = MLP(4, 16, 3, num_layers=4, rng=np.random.default_rng(0))
        assert mlp(Tensor(np.ones((2, 4)))).shape == (2, 3)
        assert len(mlp.linears) == 4

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            MLP(4, 8, 2, num_layers=0)

    def test_unknown_activation(self):
        mlp = MLP(4, 8, 2, activation="bogus", rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            mlp(Tensor(np.ones((1, 4))))

    @pytest.mark.parametrize("activation", ["relu", "elu", "tanh", "leaky_relu"])
    def test_activations_run(self, activation):
        mlp = MLP(4, 8, 2, activation=activation, rng=np.random.default_rng(0))
        assert mlp(Tensor(np.ones((3, 4)))).shape == (3, 2)


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]]))
        labels = np.array([0, 1])
        loss = F.cross_entropy(logits, labels)
        expected = -np.log(np.exp(2) / (np.exp(2) + 1))
        assert loss.item() == pytest.approx(expected)

    def test_cross_entropy_mask(self):
        logits = Tensor(np.array([[5.0, 0.0], [0.0, 5.0], [5.0, 0.0]]))
        labels = np.array([0, 1, 1])  # last one is wrong but masked out
        mask = np.array([True, True, False])
        loss_masked = F.cross_entropy(logits, labels, mask)
        loss_full = F.cross_entropy(logits, labels)
        assert loss_masked.item() < loss_full.item()

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor(np.zeros((2, 3)), requires_grad=True)
        labels = np.array([0, 2])
        F.cross_entropy(logits, labels).backward()
        # Gradient should be negative at the true class, positive elsewhere.
        assert logits.grad[0, 0] < 0
        assert logits.grad[1, 2] < 0
        assert logits.grad[0, 1] > 0

    def test_binary_cross_entropy_with_logits(self):
        logits = Tensor(np.array([10.0, -10.0]))
        targets = np.array([1.0, 0.0])
        loss = F.binary_cross_entropy_with_logits(logits, targets)
        assert loss.item() < 1e-3

    def test_l2_regularization(self):
        params = [Parameter(np.ones(4)), Parameter(2 * np.ones(2))]
        assert F.l2_regularization(params).item() == pytest.approx(4 + 8)
        assert F.l2_regularization([]).item() == 0.0


class TestOptimizers:
    @staticmethod
    def _quadratic_step(optimizer_factory, steps=200):
        target = np.array([3.0, -2.0])
        param = Parameter(np.zeros(2))
        optimizer = optimizer_factory([param])
        for _ in range(steps):
            optimizer.zero_grad()
            loss = ((param - Tensor(target)) ** 2).sum()
            loss.backward()
            optimizer.step()
        return param.data, target

    def test_sgd_converges_on_quadratic(self):
        value, target = self._quadratic_step(lambda p: SGD(p, lr=0.1))
        np.testing.assert_allclose(value, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        value, target = self._quadratic_step(lambda p: SGD(p, lr=0.05, momentum=0.9))
        np.testing.assert_allclose(value, target, atol=1e-3)

    def test_adam_converges_on_quadratic(self):
        value, target = self._quadratic_step(lambda p: Adam(p, lr=0.1), steps=400)
        np.testing.assert_allclose(value, target, atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        value_plain, _ = self._quadratic_step(lambda p: Adam(p, lr=0.1), steps=400)
        value_decayed, _ = self._quadratic_step(
            lambda p: Adam(p, lr=0.1, weight_decay=0.5), steps=400
        )
        assert np.linalg.norm(value_decayed) < np.linalg.norm(value_plain)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(2))], lr=-1.0)

    def test_step_skips_parameters_without_grad(self):
        param = Parameter(np.ones(3))
        optimizer = SGD([param], lr=0.5)
        optimizer.step()  # no gradient yet: must be a no-op
        np.testing.assert_array_equal(param.data, np.ones(3))
