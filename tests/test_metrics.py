"""Tests for homophily measures and classification metrics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import DirectedGraph, to_undirected
from repro.metrics import (
    accuracy,
    adjusted_homophily,
    class_homophily,
    confusion_matrix,
    edge_homophily,
    homophily_report,
    label_informativeness,
    macro_f1,
    node_homophily,
    summarize_runs,
)


def graph_from_edges(edges, labels, num_nodes=None):
    edges = np.asarray(edges)
    labels = np.asarray(labels)
    n = num_nodes if num_nodes is not None else labels.size
    adjacency = sp.csr_matrix(
        (np.ones(len(edges)), (edges[:, 0], edges[:, 1])), shape=(n, n)
    )
    return DirectedGraph(adjacency, np.zeros((n, 2)), labels)


@pytest.fixture()
def perfectly_homophilous():
    # Two triangles, one per class, no cross edges.
    edges = [[0, 1], [1, 2], [2, 0], [3, 4], [4, 5], [5, 3]]
    return graph_from_edges(edges, [0, 0, 0, 1, 1, 1])


@pytest.fixture()
def perfectly_heterophilous():
    # Bipartite: class 0 points to class 1 and back.
    edges = [[0, 3], [1, 4], [2, 5], [3, 0], [4, 1], [5, 2]]
    return graph_from_edges(edges, [0, 0, 0, 1, 1, 1])


class TestHomophilyMeasures:
    def test_edge_homophily_extremes(self, perfectly_homophilous, perfectly_heterophilous):
        assert edge_homophily(perfectly_homophilous) == 1.0
        assert edge_homophily(perfectly_heterophilous) == 0.0

    def test_node_homophily_extremes(self, perfectly_homophilous, perfectly_heterophilous):
        assert node_homophily(perfectly_homophilous) == 1.0
        assert node_homophily(perfectly_heterophilous) == 0.0

    def test_adjusted_homophily_extremes(self, perfectly_homophilous, perfectly_heterophilous):
        assert adjusted_homophily(perfectly_homophilous) == pytest.approx(1.0)
        assert adjusted_homophily(perfectly_heterophilous) < 0.0

    def test_class_homophily_range(self, perfectly_homophilous, perfectly_heterophilous):
        assert class_homophily(perfectly_homophilous) > class_homophily(perfectly_heterophilous)
        assert class_homophily(perfectly_heterophilous) == 0.0

    def test_label_informativeness_extremes(self, perfectly_homophilous, perfectly_heterophilous):
        # Both graphs are fully informative: knowing one endpoint determines the other.
        assert label_informativeness(perfectly_homophilous) == pytest.approx(1.0)
        assert label_informativeness(perfectly_heterophilous) == pytest.approx(1.0)

    def test_label_informativeness_random_graph_low(self):
        rng = np.random.default_rng(0)
        edges = rng.integers(0, 200, size=(2000, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        labels = rng.integers(0, 4, size=200)
        graph = graph_from_edges(edges, labels)
        assert label_informativeness(graph) < 0.05

    def test_accepts_tuple_input(self, perfectly_homophilous):
        pair = (perfectly_homophilous.adjacency, perfectly_homophilous.labels)
        assert edge_homophily(pair) == 1.0

    def test_empty_graph_returns_zero(self):
        graph = graph_from_edges(np.zeros((0, 2), dtype=int), [0, 1], num_nodes=2)
        assert edge_homophily(graph) == 0.0
        assert node_homophily(graph) == 0.0
        assert adjusted_homophily(graph) == 0.0
        assert label_informativeness(graph) == 0.0

    def test_report_contains_all_measures(self, perfectly_homophilous):
        report = homophily_report(perfectly_homophilous)
        assert set(report) == {"node", "edge", "class", "adjusted", "label_informativeness"}

    def test_directed_vs_undirected_nearly_identical_on_classic_metrics(self, heterophilous_graph):
        """Table I's point: classic homophily metrics barely change when undirecting."""
        directed_value = edge_homophily(heterophilous_graph)
        undirected_value = edge_homophily(to_undirected(heterophilous_graph))
        assert abs(directed_value - undirected_value) < 0.1

    def test_homophilous_graph_scores_high(self, homophilous_graph):
        assert edge_homophily(homophilous_graph) > 0.6
        assert adjusted_homophily(homophilous_graph) > 0.4

    def test_heterophilous_graph_scores_low(self, heterophilous_graph):
        assert edge_homophily(heterophilous_graph) < 0.35
        assert adjusted_homophily(heterophilous_graph) < 0.2


class TestClassificationMetrics:
    def test_accuracy_basic(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)

    def test_accuracy_with_boolean_mask(self):
        predictions = np.array([0, 1, 1, 0])
        labels = np.array([0, 1, 0, 0])
        mask = np.array([True, True, False, False])
        assert accuracy(predictions, labels, mask) == 1.0

    def test_accuracy_with_index_mask(self):
        predictions = np.array([0, 1, 1, 0])
        labels = np.array([0, 1, 0, 0])
        assert accuracy(predictions, labels, np.array([2])) == 0.0

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0]))

    def test_accuracy_empty_mask(self):
        assert accuracy(np.array([0]), np.array([0]), np.array([], dtype=int)) == 0.0

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]), num_classes=3)
        assert matrix[0, 0] == 1
        assert matrix[2, 1] == 1
        assert matrix.sum() == 4

    def test_macro_f1_perfect(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        assert macro_f1(labels, labels) == pytest.approx(1.0)

    def test_macro_f1_penalises_minority_errors_more_than_accuracy(self):
        labels = np.array([0] * 9 + [1])
        predictions = np.array([0] * 10)  # misses the single class-1 node
        assert accuracy(predictions, labels) == pytest.approx(0.9)
        assert macro_f1(predictions, labels) < 0.6

    def test_summarize_runs(self):
        summary = summarize_runs([0.5, 0.7])
        assert summary["mean"] == pytest.approx(0.6)
        assert summary["count"] == 2
        assert summarize_runs([])["count"] == 0
