"""ShardRouter: multi-artifact routing, asyncio front door, back-pressure
and weights-versioned logit caching for side-by-side hot-swapped artifacts."""

import asyncio
import threading

import numpy as np
import pytest

from repro.api import ServeConfig, Session, TrainConfig
from repro.datasets import load_dataset
from repro.models.base import NodeClassifier
from repro.nn import Tensor
from repro.serving import (
    InferenceServer,
    ServerOverloaded,
    ShardRouter,
    UnknownShard,
)

QUICK = TrainConfig(epochs=3, patience=3)


@pytest.fixture(scope="module")
def three_artifacts(tmp_path_factory):
    """Three trained artifacts on three distinct graphs + expected outputs."""
    root = tmp_path_factory.mktemp("shards")
    session = Session(train=QUICK)
    entries = []
    for dataset in ("texas", "cornell", "wisconsin"):
        model = session.load(dataset).fit("MLP", hidden=8)
        directory = root / dataset
        model.save(directory)
        entries.append((directory, model.graph, model.predict()))
    return entries


class SlowModel(NodeClassifier):
    """Forward blocks until released — makes in-flight requests deterministic."""

    def __init__(self, num_features, num_classes):
        super().__init__(num_features, num_classes)
        self.entered = threading.Event()
        self.release = threading.Event()

    def preprocess(self, graph):
        return {"num_nodes": graph.num_nodes}

    def forward(self, cache):
        self.entered.set()
        assert self.release.wait(timeout=30)
        return Tensor(np.zeros((cache["num_nodes"], self.num_classes)))


class TestRouting:
    def test_three_artifacts_served_through_one_front_door(self, three_artifacts):
        router = ShardRouter.from_artifacts([d for d, _, _ in three_artifacts])
        assert len(router) == 3
        errors = []

        def client(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(8):
                    directory, graph, expected = three_artifacts[
                        int(rng.integers(len(three_artifacts)))
                    ]
                    ids = rng.choice(graph.num_nodes, size=4, replace=False)
                    # Routed purely by fingerprinting the request's graph.
                    result = router.predict(node_ids=ids, graph=graph, timeout=60)
                    np.testing.assert_array_equal(result, expected[ids])
            except Exception as error:  # surfaced after join
                errors.append(error)

        with router:
            threads = [threading.Thread(target=client, args=(seed,)) for seed in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = router.stats()
        assert not errors
        assert stats.submitted == 48
        assert all(shard.requests > 0 for shard in stats.shards.values())

    def test_routes_by_shard_name(self, three_artifacts):
        router = ShardRouter()
        names = [router.add_artifact(d, name=g.name) for d, g, _ in three_artifacts]
        with router:
            for name, (_, _, expected) in zip(names, three_artifacts):
                np.testing.assert_array_equal(
                    router.predict(node_ids=[0, 1], shard=name), expected[[0, 1]]
                )

    def test_unknown_graph_and_shard_rejected(self, three_artifacts):
        directory, graph, _ = three_artifacts[0]
        router = ShardRouter.from_artifacts([directory])
        stranger = graph.with_(features=graph.features * 2.0)
        with router:
            with pytest.raises(UnknownShard, match="no shard serves"):
                router.submit(node_ids=[0], graph=stranger)
            with pytest.raises(UnknownShard, match="unknown shard"):
                router.submit(node_ids=[0], shard="nope")

    def test_multi_shard_requires_routing_key(self, three_artifacts):
        router = ShardRouter.from_artifacts([d for d, _, _ in three_artifacts])
        with router:
            with pytest.raises(UnknownShard, match="pass graph= or shard="):
                router.submit(node_ids=[0])

    def test_single_shard_routes_implicitly(self, three_artifacts):
        directory, _, expected = three_artifacts[0]
        router = ShardRouter.from_artifacts([directory])
        with router:
            np.testing.assert_array_equal(
                router.predict(node_ids=[0, 1]), expected[[0, 1]]
            )

    def test_auto_names_prefer_graph_names(self, three_artifacts):
        router = ShardRouter()
        # Unnamed shards take their graph's dataset name, the natural
        # routing key for HTTP clients.
        auto = [router.add_artifact(d) for d, _, _ in three_artifacts]
        assert auto == [g.name for _, g, _ in three_artifacts]

    def test_auto_names_skip_explicitly_taken_slots(self, three_artifacts):
        router = ShardRouter()
        first, _, _ = three_artifacts[0]
        router.add_artifact(first)  # takes the dataset name
        router.add_artifact(first, name="shard-1")
        # The dataset name is taken, so the generator kicks in; it starts
        # at shard-<count> and must walk past the explicitly taken name
        # instead of raising.
        assert router.add_artifact(first) == "shard-2"

    def test_shared_operator_cache_prewarmed(self, three_artifacts):
        router = ShardRouter.from_artifacts([d for d, _, _ in three_artifacts])
        # Each cold artifact restore fills the shared cache exactly once
        # (the restore itself runs through the cache and records the miss).
        loaded = router.operator_cache.stats()
        assert loaded.misses == len(three_artifacts)
        with router:
            for _, graph, _ in three_artifacts:
                router.predict(node_ids=[0], graph=graph)
            stats = router.stats()
        # Serving adds no preprocess misses: every request hits the cache.
        assert all(
            shard.cache.misses == loaded.misses for shard in stats.shards.values()
        )

    def test_operator_cache_grows_with_shard_count(self, three_artifacts):
        from repro.serving import OperatorCache

        # A router with more shards than the cache can hold would evict its
        # own per-shard preprocess entries and serve every request cold.
        router = ShardRouter(operator_cache=OperatorCache(capacity=1))
        for directory, _, _ in three_artifacts:
            router.add_artifact(directory)
        with router:
            for _, graph, _ in three_artifacts:
                router.predict(node_ids=[0], graph=graph)
            stats = router.stats()
        assert all(shard.cache.evictions == 0 for shard in stats.shards.values())


class TestAsyncFrontDoor:
    def test_asubmit_under_asyncio(self, three_artifacts):
        router = ShardRouter.from_artifacts([d for d, _, _ in three_artifacts])

        async def drive():
            tasks = [
                router.asubmit(node_ids=[i % graph.num_nodes], graph=graph)
                for _, graph, _ in three_artifacts
                for i in range(10)
            ]
            return await asyncio.gather(*tasks)

        with router:
            results = asyncio.run(drive())
        assert len(results) == 30
        flat = iter(results)
        for _, graph, expected in three_artifacts:
            for i in range(10):
                np.testing.assert_array_equal(next(flat), expected[[i % graph.num_nodes]])

    def test_asubmit_propagates_request_errors(self, three_artifacts):
        directory, graph, _ = three_artifacts[0]
        router = ShardRouter.from_artifacts([directory])

        async def bad_request():
            return await router.asubmit(node_ids=[graph.num_nodes + 99])

        with router:
            with pytest.raises(IndexError):
                asyncio.run(bad_request())

    def test_asubmit_respects_back_pressure(self):
        graph = load_dataset("texas", seed=0)
        model = SlowModel(graph.num_features, graph.num_classes)
        router = ShardRouter(max_pending=2)
        router.add_shard(model, graph, name="slow")

        async def drive():
            tasks = [
                asyncio.ensure_future(router.asubmit(node_ids=[0], shard="slow"))
                for _ in range(4)
            ]
            # Give the first submissions time to claim the two slots; the
            # other two coroutines stay parked in the executor.
            while router.stats().submitted < 2:
                await asyncio.sleep(0.01)
            await asyncio.sleep(0.05)
            in_flight_before_release = router.stats().submitted
            model.release.set()
            results = await asyncio.gather(*tasks)
            return in_flight_before_release, results

        with router:
            in_flight, results = asyncio.run(drive())
            # Slot waits ran on the router's own pool, not asyncio's shared
            # default executor.
            assert router._submit_executor is not None
            names = {t.name for t in threading.enumerate()}
            assert any(name.startswith("shard-router-submit") for name in names)
        assert router._submit_executor is None  # stop() tore the pool down
        assert in_flight == 2  # the bounded front door held the other two back
        assert len(results) == 4
        assert router.stats().submitted == 4


class TestBackPressure:
    def test_router_submit_nonblocking_overload(self):
        graph = load_dataset("texas", seed=0)
        model = SlowModel(graph.num_features, graph.num_classes)
        router = ShardRouter(max_pending=2)
        router.add_shard(model, graph, name="slow")
        with router:
            first = router.submit(node_ids=[0], shard="slow")
            second = router.submit(node_ids=[1], shard="slow")
            with pytest.raises(ServerOverloaded, match="at capacity"):
                router.submit(node_ids=[2], shard="slow", block=False)
            assert router.stats().rejected == 1
            model.release.set()
            first.result(timeout=30)
            second.result(timeout=30)
            # Completed tickets released their slots: the door is open again.
            router.predict(node_ids=[0], shard="slow", timeout=30)

    def test_router_forwards_waiting_policy_to_engine_bound(self):
        """block=False/timeout= must reach a saturated shard's own semaphore,
        not fall back to an unbounded wait behind a free front-door slot."""
        graph = load_dataset("texas", seed=0)
        model = SlowModel(graph.num_features, graph.num_classes)
        router = ShardRouter(max_pending=16, engine_max_pending=1, max_wait_ms=0.0)
        router.add_shard(model, graph, name="slow")
        with router:
            held = router.submit(node_ids=[0], shard="slow")
            assert model.entered.wait(timeout=30)  # engine slot is owned
            with pytest.raises(ServerOverloaded, match="at capacity"):
                router.submit(node_ids=[1], shard="slow", block=False)
            with pytest.raises(ServerOverloaded, match="at capacity"):
                router.submit(node_ids=[2], shard="slow", timeout=0.05)
            # Engine-level rejections count as front-door overload too, and
            # their router slots were given back.
            assert router.stats().rejected == 2
            model.release.set()
            held.result(timeout=30)
            router.predict(node_ids=[0], shard="slow", timeout=30)

    def test_raising_done_callback_is_contained(self, capsys):
        """A broken callback must not re-fail the ticket, skip later
        callbacks, or kill the worker (asubmit into a closed loop does this)."""
        graph = load_dataset("texas", seed=0)
        model = SlowModel(graph.num_features, graph.num_classes)
        server = InferenceServer(model, graph, max_wait_ms=0.0)
        with server:
            ticket = server.submit(node_ids=[0])
            assert model.entered.wait(timeout=30)  # in flight: callbacks queue
            seen = []
            ticket.add_done_callback(lambda t: (_ for _ in ()).throw(RuntimeError("boom")))
            ticket.add_done_callback(lambda t: seen.append(t.done()))
            model.release.set()
            result = ticket.result(timeout=30)
            # The worker survived and the ticket stayed completed.
            np.testing.assert_array_equal(server.predict(node_ids=[0], timeout=30), result)
        # stop() joined the worker, so both callbacks have definitely fired.
        assert seen == [True]
        assert "boom" in capsys.readouterr().err

    def test_engine_in_flight_bound_overload(self):
        graph = load_dataset("texas", seed=0)
        model = SlowModel(graph.num_features, graph.num_classes)
        server = InferenceServer(
            model, graph, max_batch_size=1, max_wait_ms=0.0, max_pending=1
        )
        with server:
            in_worker = server.submit(node_ids=[0])
            assert model.entered.wait(timeout=30)  # worker owns the one slot
            with pytest.raises(ServerOverloaded, match="at capacity"):
                server.submit(node_ids=[1], block=False)
            with pytest.raises(ServerOverloaded, match="at capacity"):
                server.submit(node_ids=[2], timeout=0.05)
            model.release.set()
            in_worker.result(timeout=30)
            # Completion released the slot; the server accepts requests again.
            server.predict(node_ids=[0], timeout=30)

    def test_engine_stop_not_stalled_by_saturated_submitters(self):
        """A blocked submit() must not hold the lifecycle lock: stop() has
        to stay responsive while callers wait on back-pressure."""
        graph = load_dataset("texas", seed=0)
        model = SlowModel(graph.num_features, graph.num_classes)
        server = InferenceServer(
            model, graph, max_batch_size=1, max_wait_ms=0.0, max_pending=1
        )
        server.start()
        held = server.submit(node_ids=[0])
        assert model.entered.wait(timeout=30)
        blocked_outcome = []

        def blocked_submit():
            try:
                blocked_outcome.append(server.submit(node_ids=[1], timeout=10))
            except BaseException as error:
                blocked_outcome.append(error)

        waiter = threading.Thread(target=blocked_submit)
        waiter.start()
        model.release.set()  # let the held request finish so stop() can join
        server.stop(timeout=30)
        waiter.join(timeout=30)
        assert not waiter.is_alive()
        held.result(timeout=30)
        # The parked submitter either got through before shutdown (its
        # ticket then resolved or was failed by the drain) or was refused
        # because the server had stopped — never left hanging.
        assert len(blocked_outcome) == 1


class TestWeightsVersionedLogitCache:
    def test_hot_swapped_artifacts_serve_side_by_side(self, tmp_path):
        """Same architecture, same graph, different weights — the shared
        logit cache must never serve one version's logits for the other."""
        session = Session(train=QUICK)
        graph = session.load("texas").graph
        v1 = session.from_graph(graph).fit("MLP", hidden=8, seed=0)
        v2 = session.from_graph(graph).fit(
            "MLP", train=TrainConfig(epochs=40, patience=40), hidden=8, seed=1
        )
        expected = {"v1": v1.predict(), "v2": v2.predict()}
        assert not np.array_equal(expected["v1"], expected["v2"])

        router = ShardRouter()
        router.add_shard(v1.model, v1.graph, name="v1")
        router.add_shard(v2.model, v2.graph, name="v2")
        with router:
            # Identical graph fingerprint on both shards: only an explicit
            # shard name can route, and each must get its own logits even
            # though both engines share one logit LRU.
            with pytest.raises(UnknownShard, match="several"):
                router.submit(node_ids=[0], graph=graph)
            for _ in range(3):  # repeats hit the cache, never cross-talk
                np.testing.assert_array_equal(
                    router.predict(shard="v1", timeout=30), expected["v1"]
                )
                np.testing.assert_array_equal(
                    router.predict(shard="v2", timeout=30), expected["v2"]
                )
            stats = router.stats()
        hits = sum(s.logit_cache.hits for s in stats.shards.values())
        assert hits > 0  # the shared cache did serve warm requests

    def test_same_weights_different_hyperparams_never_cross_talk(self):
        """Hyper-parameters outside the state dict (SGC's num_steps) change
        the forward output without changing any weight; the shared cache key
        must carry the model signature so such shards stay apart."""
        from repro.models import create_model

        graph = load_dataset("texas", seed=0)
        shallow = create_model("SGC", graph, seed=0, num_steps=1)
        deep = create_model("SGC", graph, seed=0, num_steps=8)
        expected = {"shallow": shallow.predict(graph), "deep": deep.predict(graph)}
        assert not np.array_equal(expected["shallow"], expected["deep"])

        router = ShardRouter()
        router.add_shard(shallow, graph, name="shallow")
        router.add_shard(deep, graph, name="deep")
        with router:
            for _ in range(2):  # second round is served from the cache
                np.testing.assert_array_equal(
                    router.predict(shard="shallow", timeout=30), expected["shallow"]
                )
                np.testing.assert_array_equal(
                    router.predict(shard="deep", timeout=30), expected["deep"]
                )

    def test_clear_logit_cache_revalidates_weights_version(self, tmp_path):
        session = Session(train=QUICK)
        model = session.load("texas").fit("MLP", hidden=8)
        server = model.serve()
        with server:
            before = server.predict(timeout=30)
            # Mutate weights in place — serving requires an explicit
            # clear_logit_cache() afterwards, which also rehashes the state.
            for parameter in server.model.parameters():
                parameter.data[...] = 0.0
            server.clear_logit_cache()
            after = server.predict(timeout=30)
        assert not np.array_equal(before, after) or model.graph.num_classes == 1
