"""Tests for the trainer, the repeated-experiment helpers and sparsity sweeps."""

import numpy as np
import pytest

from repro.models import create_model
from repro.training import (
    SPARSITY_KINDS,
    Trainer,
    apply_sparsity,
    average_rank,
    format_results_table,
    format_sparsity_table,
    rank_results,
    run_model_suite,
    run_repeated,
    run_single,
    sparsity_sweep,
)


class TestTrainer:
    def test_configuration_validation(self):
        with pytest.raises(ValueError):
            Trainer(epochs=0)
        with pytest.raises(ValueError):
            Trainer(patience=0)
        with pytest.raises(ValueError):
            Trainer(optimizer="rmsprop")

    def test_fit_requires_splits(self, tiny_graph):
        model = create_model("MLP", tiny_graph, hidden=8, seed=0)
        with pytest.raises(ValueError):
            Trainer(epochs=5).fit(model, tiny_graph)

    def test_fit_returns_history(self, homophilous_graph):
        trainer = Trainer(epochs=15, patience=15)
        model = create_model("MLP", homophilous_graph, hidden=16, seed=0)
        result = trainer.fit(model, homophilous_graph)
        assert result.epochs_run == 15
        assert len(result.history["loss"]) == 15
        assert len(result.history["val_acc"]) == 15
        assert result.best_epoch >= 1
        assert 0.0 <= result.test_accuracy <= 1.0
        assert result.fit_seconds > 0
        assert result.preprocess_seconds >= 0

    def test_loss_decreases(self, homophilous_graph):
        trainer = Trainer(epochs=30, patience=30)
        model = create_model("GCN", homophilous_graph, hidden=16, seed=0)
        result = trainer.fit(model, homophilous_graph)
        losses = result.history["loss"]
        assert losses[-1] < losses[0]

    def test_early_stopping_limits_epochs(self, homophilous_graph):
        trainer = Trainer(epochs=500, patience=5)
        model = create_model("SGC", homophilous_graph, seed=0)
        result = trainer.fit(model, homophilous_graph)
        assert result.epochs_run < 500

    def test_best_state_restored(self, homophilous_graph):
        """Final test accuracy must correspond to the best validation epoch."""
        trainer = Trainer(epochs=40, patience=40)
        model = create_model("MLP", homophilous_graph, hidden=16, seed=0)
        result = trainer.fit(model, homophilous_graph)
        assert result.val_accuracy == pytest.approx(max(result.history["val_acc"]))

    def test_sgd_optimizer_path(self, homophilous_graph):
        trainer = Trainer(epochs=10, patience=10, optimizer="sgd", lr=0.1)
        model = create_model("MLP", homophilous_graph, hidden=16, seed=0)
        result = trainer.fit(model, homophilous_graph)
        assert 0.0 <= result.test_accuracy <= 1.0


class TestExperimentHelpers:
    def test_run_single_seed_controls_model(self, homophilous_graph, fast_trainer):
        a = run_single("MLP", homophilous_graph, seed=0, trainer=fast_trainer)
        b = run_single("MLP", homophilous_graph, seed=0, trainer=fast_trainer)
        assert a.test_accuracy == pytest.approx(b.test_accuracy)

    def test_run_repeated_aggregates(self, homophilous_graph, fast_trainer):
        result = run_repeated("MLP", homophilous_graph, seeds=(0, 1), trainer=fast_trainer)
        assert result.model == "MLP"
        assert result.dataset == homophilous_graph.name
        assert len(result.runs) == 2
        expected_mean = np.mean([run.test_accuracy for run in result.runs])
        assert result.test_mean == pytest.approx(expected_mean)

    def test_run_model_suite(self, homophilous_graph, fast_trainer):
        results = run_model_suite(["MLP", "SGC"], homophilous_graph, seeds=(0,), trainer=fast_trainer)
        assert [result.model for result in results] == ["MLP", "SGC"]

    def test_rank_results(self, homophilous_graph, fast_trainer):
        results = run_model_suite(["MLP", "SGC"], homophilous_graph, seeds=(0,), trainer=fast_trainer)
        ranks = rank_results(results)
        assert set(ranks.values()) == {1.0, 2.0}
        best_model = max(results, key=lambda result: result.test_mean).model
        assert ranks[best_model] == 1.0

    def test_average_rank(self, homophilous_graph, heterophilous_graph, fast_trainer):
        suite_a = run_model_suite(["MLP", "SGC"], homophilous_graph, seeds=(0,), trainer=fast_trainer)
        suite_b = run_model_suite(["MLP", "SGC"], heterophilous_graph, seeds=(0,), trainer=fast_trainer)
        averaged = average_rank([suite_a, suite_b])
        assert set(averaged) == {"MLP", "SGC"}
        assert all(1.0 <= value <= 2.0 for value in averaged.values())

    def test_format_results_table(self, homophilous_graph, fast_trainer):
        results = run_model_suite(["MLP"], homophilous_graph, seeds=(0,), trainer=fast_trainer)
        table = format_results_table({homophilous_graph.name: results})
        assert "MLP" in table
        assert homophilous_graph.name in table
        assert "Rank" in table

    def test_result_as_row(self, homophilous_graph, fast_trainer):
        result = run_repeated("MLP", homophilous_graph, seeds=(0,), trainer=fast_trainer)
        row = result.as_row()
        assert row["model"] == "MLP"
        assert 0.0 <= row["test_mean"] <= 1.0


class TestSparsity:
    def test_kinds_exposed(self):
        assert set(SPARSITY_KINDS) == {"feature", "edge", "label"}

    def test_apply_sparsity_feature(self, homophilous_graph):
        sparsified = apply_sparsity(homophilous_graph, "feature", 0.5)
        zero_rows = np.sum(np.all(sparsified.features == 0, axis=1))
        assert zero_rows > 0

    def test_apply_sparsity_edge(self, homophilous_graph):
        sparsified = apply_sparsity(homophilous_graph, "edge", 0.5)
        assert sparsified.num_edges < homophilous_graph.num_edges

    def test_apply_sparsity_label(self, homophilous_graph):
        sparsified = apply_sparsity(homophilous_graph, "label", 2)
        assert sparsified.train_mask.sum() <= 2 * homophilous_graph.num_classes

    def test_apply_sparsity_unknown_kind(self, homophilous_graph):
        with pytest.raises(ValueError):
            apply_sparsity(homophilous_graph, "bogus", 0.5)

    def test_sparsity_sweep_and_table(self, homophilous_graph, fast_trainer):
        points = sparsity_sweep(
            ["MLP"], homophilous_graph, kind="edge", levels=[0.0, 0.5], seeds=(0,), trainer=fast_trainer
        )
        assert len(points) == 2
        assert {point.level for point in points} == {0.0, 0.5}
        table = format_sparsity_table(points)
        assert "MLP" in table and "edge" in table
