"""Inference engine behaviour and the serving CLI subcommands."""

import json
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.models import create_model
from repro.serving import InferenceServer, save_model
from repro.training import Trainer


@pytest.fixture(scope="module")
def trained_export(tmp_path_factory):
    """A trained MLP artifact directory shared by the engine tests."""
    from repro.datasets import load_dataset

    graph = load_dataset("texas", seed=0)
    model = create_model("MLP", graph, seed=0, hidden=16)
    Trainer(epochs=5, patience=5).fit(model, graph)
    directory = tmp_path_factory.mktemp("artifact")
    save_model(model, directory, graph=graph)
    return directory, graph, model.predict_logits(graph).argmax(axis=1)


class TestInferenceServer:
    def test_coalesces_concurrent_requests(self, trained_export):
        directory, graph, expected = trained_export
        server, _ = InferenceServer.from_artifact(directory, max_wait_ms=5.0)
        with server:
            tickets = [server.submit(node_ids=[i % graph.num_nodes]) for i in range(50)]
            for index, ticket in enumerate(tickets):
                node = index % graph.num_nodes
                np.testing.assert_array_equal(ticket.result(timeout=30), expected[[node]])
        stats = server.stats()
        assert stats.requests == 50
        assert stats.batches < stats.requests  # coalescing happened
        assert stats.forwards <= stats.batches

    def test_full_graph_request(self, trained_export):
        directory, graph, expected = trained_export
        server, _ = InferenceServer.from_artifact(directory)
        with server:
            np.testing.assert_array_equal(server.predict(node_ids=None), expected)

    def test_serves_alternate_graph_and_groups_by_fingerprint(self, trained_export):
        directory, graph, expected = trained_export
        other = graph.with_(features=graph.features * 1.5)
        server, _ = InferenceServer.from_artifact(directory, max_wait_ms=5.0)
        with server:
            base = server.submit(node_ids=[0, 1])
            alt = server.submit(node_ids=[0, 1], graph=other)
            base.result(timeout=30)
            alt.result(timeout=30)
        # Two distinct graph fingerprints means two forwards even if the
        # requests shared one micro-batch.
        assert server.stats().forwards == 2

    def test_bad_node_ids_fail_only_their_ticket(self, trained_export):
        directory, graph, expected = trained_export
        server, _ = InferenceServer.from_artifact(directory, max_wait_ms=5.0)
        with server:
            bad = server.submit(node_ids=[graph.num_nodes + 7])
            good = server.submit(node_ids=[0])
            with pytest.raises(IndexError):
                bad.result(timeout=30)
            np.testing.assert_array_equal(good.result(timeout=30), expected[[0]])

    def test_submit_requires_running_server(self, trained_export):
        directory, _, _ = trained_export
        server, _ = InferenceServer.from_artifact(directory)
        with pytest.raises(RuntimeError, match="not running"):
            server.submit(node_ids=[0])

    def test_negative_node_ids_rejected_at_submit(self, trained_export):
        directory, _, _ = trained_export
        server, _ = InferenceServer.from_artifact(directory)
        with server:
            with pytest.raises(ValueError, match="non-negative"):
                server.submit(node_ids=[0, -3])

    def test_warm_only_before_start(self, trained_export):
        directory, graph, _ = trained_export
        server, _ = InferenceServer.from_artifact(directory)
        server.warm()  # allowed while stopped
        with server:
            with pytest.raises(RuntimeError, match="before start"):
                server.warm()

    def test_logit_cache_skips_forwards(self, trained_export):
        directory, _, _ = trained_export
        server, _ = InferenceServer.from_artifact(directory, max_wait_ms=0.0)
        with server:
            for _ in range(5):
                server.predict(node_ids=[0])
        assert server.stats().forwards == 1

        uncached, _ = InferenceServer.from_artifact(
            directory, max_wait_ms=0.0, cache_logits=False
        )
        with uncached:
            for _ in range(3):
                uncached.predict(node_ids=[0])
        stats = uncached.stats()
        assert stats.forwards == stats.batches == 3
        # Even without logit memoisation the operator cache still serves
        # every preprocess after the seeded first one.
        assert stats.cache.misses == 0

    def test_concurrent_clients_under_load(self, trained_export):
        directory, graph, expected = trained_export
        server, _ = InferenceServer.from_artifact(directory, max_wait_ms=2.0)
        errors = []

        def client(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                for _ in range(10):
                    ids = rng.choice(graph.num_nodes, size=4, replace=False)
                    result = server.predict(node_ids=ids, timeout=60)
                    np.testing.assert_array_equal(result, expected[ids])
            except Exception as error:  # surfaced after join
                errors.append(error)

        with server:
            threads = [threading.Thread(target=client, args=(s,)) for s in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert server.stats().requests == 60


class TestServingCli:
    def test_export_predict_round_trip(self, tmp_path, capsys):
        artifact = tmp_path / "export"
        assert main([
            "export", "texas", "--model", "MLP", "--epochs", "5", "--patience", "5",
            "--out", str(artifact),
        ]) == 0
        exported = capsys.readouterr().out
        assert "artifact:" in exported

        assert main(["predict", str(artifact), "--nodes", "0", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "test accuracy" in out and "0->" in out

        assert main(["predict", str(artifact), "--json", "--nodes", "0", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "MLP"
        assert len(payload["predictions"]) == 2

        # `--nodes` with no ids is an empty request, not a crash.
        assert main(["predict", str(artifact), "--json", "--nodes"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["predictions"] == []

    def test_export_pipeline_and_serve_bench(self, tmp_path, capsys):
        artifact = tmp_path / "pipe"
        assert main([
            "export", "texas", "--epochs", "5", "--patience", "5", "--out", str(artifact),
        ]) == 0
        assert "AMUD score" in capsys.readouterr().out

        assert main([
            "serve-bench", str(artifact), "--requests", "32", "--clients", "2",
            "--subset-size", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "req/s" in out and "operator cache" in out

    def test_predict_json_matches_fresh_process_semantics(self, tmp_path, capsys):
        """export then predict reproduces the in-memory predictions."""
        from repro.api import Session, TrainConfig
        from repro.datasets import load_dataset

        graph = load_dataset("texas", seed=0)
        handle = Session(train=TrainConfig(epochs=5, patience=5)).from_graph(graph).amud().fit()
        expected = handle.predict()

        artifact = tmp_path / "model"
        handle.save(artifact)
        nodes = [str(i) for i in range(graph.num_nodes)]
        assert main(["predict", str(artifact), "--json", "--nodes", *nodes]) == 0
        payload = json.loads(capsys.readouterr().out)
        np.testing.assert_array_equal(np.asarray(payload["predictions"]), expected)
