"""Tests for adjacency normalisations, DP operators and spectral operators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import (
    add_self_loops,
    directed_pattern_operators,
    magnetic_laplacian,
    normalized_adjacency,
    normalized_laplacian,
    num_patterns_for_order,
    personalized_pagerank_adjacency,
    propagation_operators,
    row_normalized,
    second_order_patterns,
    symmetric_normalized_adjacency,
    SECOND_ORDER_PATTERN_NAMES,
)


@pytest.fixture()
def line_digraph():
    """0 -> 1 -> 2 -> 3 (a directed path)."""
    dense = np.zeros((4, 4))
    for i in range(3):
        dense[i, i + 1] = 1.0
    return sp.csr_matrix(dense)


@pytest.fixture()
def random_digraph():
    rng = np.random.default_rng(0)
    dense = (rng.random((20, 20)) < 0.15).astype(float)
    np.fill_diagonal(dense, 0)
    return sp.csr_matrix(dense)


class TestNormalisations:
    def test_add_self_loops(self, line_digraph):
        looped = add_self_loops(line_digraph)
        np.testing.assert_allclose(looped.diagonal(), np.ones(4))

    def test_symmetric_normalization_row_sums(self, random_digraph):
        symmetric_input = sp.csr_matrix(
            ((random_digraph + random_digraph.T) > 0).astype(float)
        )
        normalized = symmetric_normalized_adjacency(symmetric_input)
        eigenvalues = np.linalg.eigvalsh(normalized.toarray())
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_row_normalized_rows_sum_to_one(self, random_digraph):
        normalized = row_normalized(add_self_loops(random_digraph))
        np.testing.assert_allclose(np.asarray(normalized.sum(axis=1)).ravel(), 1.0)

    def test_row_normalized_keeps_zero_rows(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        normalized = row_normalized(matrix)
        assert normalized[1].nnz == 0

    def test_normalized_adjacency_r_bounds(self, random_digraph):
        with pytest.raises(ValueError):
            normalized_adjacency(random_digraph, r=1.5)

    def test_random_walk_variant(self, random_digraph):
        rw = normalized_adjacency(random_digraph, r=1.0)
        # D^0 A D^-1: columns of the result sum to 1 for columns with in-edges.
        column_sums = np.asarray(rw.sum(axis=0)).ravel()
        in_degree = np.asarray(add_self_loops(random_digraph).sum(axis=0)).ravel()
        np.testing.assert_allclose(column_sums[in_degree > 0], 1.0)

    def test_normalized_laplacian_psd(self, random_digraph):
        symmetric_input = sp.csr_matrix(
            ((random_digraph + random_digraph.T) > 0).astype(float)
        )
        laplacian = normalized_laplacian(symmetric_input)
        eigenvalues = np.linalg.eigvalsh(laplacian.toarray())
        assert eigenvalues.min() >= -1e-9
        assert eigenvalues.max() <= 2.0 + 1e-9


class TestDirectedPatterns:
    def test_pattern_count_by_order(self):
        assert num_patterns_for_order(1) == 2
        assert num_patterns_for_order(2) == 6
        assert num_patterns_for_order(3) == 14
        with pytest.raises(ValueError):
            num_patterns_for_order(0)

    def test_second_order_names(self, line_digraph):
        patterns = second_order_patterns(line_digraph)
        assert set(SECOND_ORDER_PATTERN_NAMES) == set(patterns)

    def test_transpose_relationship(self, random_digraph):
        patterns = directed_pattern_operators(random_digraph, order=2)
        np.testing.assert_array_equal(
            patterns["A"].toarray(), patterns["At"].T.toarray()
        )
        np.testing.assert_array_equal(
            patterns["AA"].toarray(), patterns["AtAt"].T.toarray()
        )

    def test_line_graph_second_order_reachability(self, line_digraph):
        patterns = directed_pattern_operators(line_digraph, order=2)
        # AA: two-step forward reachability 0->2, 1->3.
        aa = patterns["AA"].toarray()
        assert aa[0, 2] == 1 and aa[1, 3] == 1
        assert aa.sum() == 2
        # AAt: nodes sharing an out-neighbour; a path graph has none.
        assert patterns["AAt"].nnz == 0
        # AtA: nodes sharing an in-neighbour; also none on a path.
        assert patterns["AtA"].nnz == 0

    def test_shared_target_pattern(self):
        # 0 -> 2 <- 1: AAt must connect 0 and 1.
        dense = np.zeros((3, 3))
        dense[0, 2] = dense[1, 2] = 1.0
        patterns = directed_pattern_operators(sp.csr_matrix(dense), order=2)
        aat = patterns["AAt"].toarray()
        assert aat[0, 1] == 1 and aat[1, 0] == 1

    def test_binarize_and_no_self_loops(self, random_digraph):
        patterns = directed_pattern_operators(random_digraph, order=2, binarize=True)
        for name, matrix in patterns.items():
            assert np.all(np.isin(matrix.data, [1.0])), name
            if len(name.replace("At", "B")) > 1:
                assert matrix.diagonal().sum() == 0, name

    def test_invalid_order(self, line_digraph):
        with pytest.raises(ValueError):
            directed_pattern_operators(line_digraph, order=0)

    def test_undirected_input_collapses_pairs(self):
        dense = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float)
        patterns = directed_pattern_operators(sp.csr_matrix(dense), order=2)
        np.testing.assert_array_equal(patterns["A"].toarray(), patterns["At"].toarray())
        np.testing.assert_array_equal(patterns["AA"].toarray(), patterns["AAt"].toarray())

    def test_propagation_operators_are_row_stochastic(self, random_digraph):
        operators = propagation_operators(random_digraph, order=2)
        assert len(operators) == 6
        for matrix in operators.values():
            np.testing.assert_allclose(np.asarray(matrix.sum(axis=1)).ravel(), 1.0)


class TestSpectralOperators:
    def test_magnetic_laplacian_hermitian(self, random_digraph):
        laplacian_re, laplacian_im = magnetic_laplacian(random_digraph, q=0.25)
        # Real part symmetric, imaginary part antisymmetric.
        np.testing.assert_allclose(
            laplacian_re.toarray(), laplacian_re.T.toarray(), atol=1e-10
        )
        np.testing.assert_allclose(
            laplacian_im.toarray(), -laplacian_im.T.toarray(), atol=1e-10
        )

    def test_magnetic_laplacian_q_zero_matches_symmetric(self, random_digraph):
        laplacian_re, laplacian_im = magnetic_laplacian(random_digraph, q=0.0)
        assert np.abs(laplacian_im.toarray()).max() < 1e-12

    def test_magnetic_laplacian_eigenvalues_bounded(self, random_digraph):
        laplacian_re, laplacian_im = magnetic_laplacian(random_digraph, q=0.25)
        hermitian = laplacian_re.toarray() + 1j * laplacian_im.toarray()
        eigenvalues = np.linalg.eigvalsh(hermitian)
        assert eigenvalues.min() >= -1e-8
        assert eigenvalues.max() <= 2.0 + 1e-8

    def test_ppr_adjacency_symmetric(self, random_digraph):
        operator = personalized_pagerank_adjacency(random_digraph, alpha=0.1)
        np.testing.assert_allclose(operator.toarray(), operator.T.toarray(), atol=1e-10)

    def test_ppr_invalid_alpha(self, random_digraph):
        with pytest.raises(ValueError):
            personalized_pagerank_adjacency(random_digraph, alpha=1.5)
