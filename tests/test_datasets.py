"""Tests for the calibrated synthetic dataset registry (Table II stand-ins)."""

import numpy as np
import pytest

from repro.amud import amud_decide
from repro.datasets import (
    DATASET_CONFIGS,
    FIGURE2_DATASETS,
    TABLE3_DATASETS,
    TABLE4_DATASETS,
    TABLE5_DATASETS,
    dataset_config,
    heterophilous_datasets,
    homophilous_datasets,
    list_datasets,
    load_dataset,
    load_group,
)
from repro.graph.splits import validate_splits
from repro.metrics import edge_homophily


class TestRegistry:
    def test_sixteen_datasets_registered(self):
        assert len(list_datasets()) == 16

    def test_groups_partition_registry(self):
        homophilous = set(homophilous_datasets())
        heterophilous = set(heterophilous_datasets())
        assert not homophilous & heterophilous
        assert homophilous | heterophilous == set(list_datasets())

    def test_table_groups_are_registered_names(self):
        registered = set(list_datasets())
        for group in (TABLE3_DATASETS, TABLE4_DATASETS, TABLE5_DATASETS, FIGURE2_DATASETS):
            assert set(group) <= registered

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("not-a-dataset")
        with pytest.raises(KeyError):
            dataset_config("not-a-dataset")

    def test_dataset_config_lookup(self):
        config = dataset_config("CoraML")
        assert config.name == "coraml"
        assert config.num_classes == 7

    def test_load_group(self):
        graphs = load_group(["texas", "cornell"])
        assert set(graphs) == {"texas", "cornell"}


class TestGeneratedDatasets:
    def test_all_datasets_build_and_have_valid_splits(self):
        for name in list_datasets():
            graph = load_dataset(name, seed=0)
            config = dataset_config(name)
            assert graph.num_nodes == config.num_nodes
            assert graph.num_classes == config.num_classes
            assert graph.num_features == config.feature_dim
            validate_splits(graph)

    def test_determinism_across_loads(self):
        a = load_dataset("chameleon", seed=0)
        b = load_dataset("chameleon", seed=0)
        np.testing.assert_array_equal(a.adjacency.toarray(), b.adjacency.toarray())
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.train_mask, b.train_mask)

    def test_different_seed_changes_graph(self):
        a = load_dataset("chameleon", seed=0)
        b = load_dataset("chameleon", seed=1)
        assert not np.array_equal(a.adjacency.toarray(), b.adjacency.toarray())

    @pytest.mark.parametrize("name", ["coraml", "citeseer", "pubmed", "amazon-computers"])
    def test_homophilous_calibration(self, name):
        graph = load_dataset(name, seed=0)
        target = dataset_config(name).homophily
        assert edge_homophily(graph) == pytest.approx(target, abs=0.08)

    @pytest.mark.parametrize("name", ["texas", "chameleon", "squirrel", "roman-empire"])
    def test_heterophilous_calibration(self, name):
        graph = load_dataset(name, seed=0)
        assert edge_homophily(graph) < 0.35

    @pytest.mark.parametrize("name", list(DATASET_CONFIGS))
    def test_amud_regime_matches_paper(self, name):
        """The headline property: each stand-in lands in the paper's AMUD regime."""
        graph = load_dataset(name, seed=0)
        decision = amud_decide(graph)
        assert decision.modeling == dataset_config(name).amud_regime

    def test_abnormal_datasets_exist(self):
        """Actor / Amazon-rating are heterophilous yet AMUndirected (Table V)."""
        for name in ("actor", "amazon-rating"):
            graph = load_dataset(name, seed=0)
            assert edge_homophily(graph) < 0.45
            assert amud_decide(graph).modeling == "undirected"
        # Genius is homophilous yet AMDirected.
        genius = load_dataset("genius", seed=0)
        assert edge_homophily(genius) > 0.5
        assert amud_decide(genius).modeling == "directed"

    def test_metadata_attached(self):
        graph = load_dataset("texas", seed=0)
        assert graph.meta["amud_regime"] == "directed"
        assert graph.meta["generator"] == "directed_sbm"
        assert "description" in graph.meta
