"""GraphDelta, incremental fingerprints and the num_classes pin."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fingerprint import canonical_csr, fingerprint_state, graph_fingerprint
from repro.graph import DirectedGraph, GraphDelta, from_edge_list
from repro.graph.transforms import largest_connected_component, to_undirected
from repro.models.mlp import MLPClassifier
from repro.models.sgc import SGC
from repro.serving.cache import OperatorCache


def build_graph(seed: int = 0, n: int = 80, f: int = 6, c: int = 4) -> DirectedGraph:
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(4 * n, 2))
    return from_edge_list(
        edges,
        n,
        rng.normal(size=(n, f)),
        rng.integers(0, c, size=n),
        train_mask=rng.random(n) < 0.5,
        val_mask=rng.random(n) < 0.25,
        test_mask=rng.random(n) < 0.25,
        name="delta-test",
    )


def random_delta(rng: np.random.Generator, graph: DirectedGraph) -> GraphDelta:
    n, f = graph.num_nodes, graph.num_features
    kind = int(rng.integers(6))
    if kind == 0:
        m = int(rng.integers(1, 4))
        return GraphDelta(
            add_edges=rng.integers(0, n, size=(m, 2)),
            add_weights=rng.uniform(0.5, 2.0, size=m),
        )
    if kind == 1:
        sources, targets = graph.edge_list()
        picks = rng.integers(0, len(sources), size=min(3, len(sources)))
        return GraphDelta(remove_edges=np.stack([sources[picks], targets[picks]], axis=1))
    if kind == 2:
        return GraphDelta(
            add_edges=rng.integers(0, n, size=(2, 2)),
            remove_edges=rng.integers(0, n, size=(2, 2)),
        )
    if kind == 3:
        return GraphDelta(
            set_features={int(node): rng.normal(size=f) for node in rng.integers(0, n, 3)}
        )
    if kind == 4:
        return GraphDelta(
            set_labels={int(node): int(rng.integers(graph.num_classes)) for node in rng.integers(0, n, 3)}
        )
    return GraphDelta(
        set_masks={
            "train": {int(rng.integers(n)): bool(rng.integers(2))},
            "val_mask": {int(rng.integers(n)): bool(rng.integers(2))},
        }
    )


class TestCanonicalFingerprint:
    def test_duplicate_coo_and_sorted_csr_share_fingerprint(self):
        """Regression: representation-equivalent graphs share one fingerprint."""
        base = build_graph()
        csr = base.adjacency.tocsr()
        coo = csr.tocoo()
        # Same mathematical matrix as duplicate, shuffled COO entries whose
        # values sum back to the originals.
        rng = np.random.default_rng(7)
        row = np.concatenate([coo.row, coo.row])
        col = np.concatenate([coo.col, coo.col])
        data = np.concatenate([coo.data * 0.3, coo.data * 0.7])
        perm = rng.permutation(row.size)
        duplicated = sp.coo_matrix((data[perm], (row[perm], col[perm])), shape=csr.shape)
        twin = DirectedGraph(
            adjacency=duplicated,
            features=base.features,
            labels=base.labels,
            train_mask=base.train_mask,
            val_mask=base.val_mask,
            test_mask=base.test_mask,
        )
        assert twin.fingerprint() == base.fingerprint()

    def test_index_dtype_and_explicit_zeros_ignored(self):
        base = build_graph(seed=3)
        variant = base.adjacency.tocsr().copy()
        variant.indices = variant.indices.astype(np.int32)
        variant.indptr = variant.indptr.astype(np.int32)
        # Append an explicit zero via an addition that scipy keeps stored.
        zero = sp.csr_matrix(
            (np.array([0.0]), (np.array([0]), np.array([0]))), shape=variant.shape
        )
        twin = DirectedGraph(
            adjacency=variant + zero,
            features=base.features,
            labels=base.labels,
            train_mask=base.train_mask,
            val_mask=base.val_mask,
            test_mask=base.test_mask,
        )
        assert twin.fingerprint() == base.fingerprint()

    def test_equivalent_representations_hit_operator_cache(self):
        base = build_graph(seed=5)
        shuffled = base.adjacency.tocoo()
        rng = np.random.default_rng(11)
        perm = rng.permutation(shuffled.nnz)
        twin = DirectedGraph(
            adjacency=sp.coo_matrix(
                (shuffled.data[perm], (shuffled.row[perm], shuffled.col[perm])),
                shape=shuffled.shape,
            ),
            features=base.features,
            labels=base.labels,
            train_mask=base.train_mask,
            val_mask=base.val_mask,
            test_mask=base.test_mask,
        )
        model = SGC(base.num_features, base.num_classes, num_steps=2)
        cache = OperatorCache()
        first = cache.preprocess(model, base)
        second = cache.preprocess(model, twin)
        assert second is first  # cache hit, not a recompute
        assert cache.stats().hits == 1 and cache.stats().misses == 1

    def test_canonical_csr_does_not_mutate_input(self):
        matrix = sp.coo_matrix(
            (np.array([1.0, 2.0]), (np.array([1, 0]), np.array([0, 1]))), shape=(2, 2)
        )
        before = (matrix.row.copy(), matrix.col.copy(), matrix.data.copy())
        canonical_csr(matrix)
        assert np.array_equal(matrix.row, before[0])
        assert np.array_equal(matrix.col, before[1])
        assert np.array_equal(matrix.data, before[2])

    def test_content_changes_still_change_fingerprint(self):
        base = build_graph(seed=9)
        changed = base.apply_delta(GraphDelta(add_edges=[[0, 1]], add_weights=0.5))
        assert changed.fingerprint() != base.fingerprint()


class TestApplyDelta:
    def test_incremental_equals_full_rehash_across_kinds(self):
        """Property: apply_delta's fingerprint is bit-identical to a rehash."""
        rng = np.random.default_rng(42)
        graph = build_graph(seed=1)
        for _ in range(40):
            delta = random_delta(rng, graph)
            # validate=True raises if the incremental digest diverges.
            graph = graph.apply_delta(delta, validate=True)
            assert graph.fingerprint() == graph_fingerprint(graph)
            state = fingerprint_state(graph)
            assert graph.fingerprint_state().digest() == state.digest()

    def test_edge_semantics(self):
        graph = build_graph(seed=2)
        updated = graph.apply_delta(
            GraphDelta(add_edges=[[0, 1], [0, 1]], add_weights=[2.0, 3.0])
        )
        assert updated.adjacency[0, 1] == 3.0  # last write wins
        removed = updated.apply_delta(GraphDelta(remove_edges=[[0, 1]]))
        assert removed.adjacency[0, 1] == 0.0
        assert removed.num_edges == updated.num_edges - 1
        # Removing an absent edge is a no-op; remove-then-add keeps the add.
        both = graph.apply_delta(
            GraphDelta(add_edges=[[2, 3]], remove_edges=[[2, 3]]), validate=True
        )
        assert both.adjacency[2, 3] == 1.0

    def test_input_graph_is_never_mutated(self):
        graph = build_graph(seed=4)
        fp = graph.fingerprint()
        adjacency = graph.adjacency.copy()
        features = graph.features.copy()
        graph.apply_delta(
            GraphDelta(
                add_edges=[[1, 2]],
                set_features={0: np.zeros(graph.num_features)},
                set_labels={0: 1},
                set_masks={"train": {0: True}},
            )
        )
        assert graph.fingerprint() == fp
        assert (graph.adjacency != adjacency).nnz == 0
        assert np.array_equal(graph.features, features)

    def test_empty_delta_preserves_fingerprint(self):
        graph = build_graph(seed=6)
        clone = graph.apply_delta(GraphDelta(), validate=True)
        assert clone is not graph
        assert clone.fingerprint() == graph.fingerprint()
        assert GraphDelta().is_empty

    def test_validation_errors(self):
        graph = build_graph(seed=8)
        n = graph.num_nodes
        with pytest.raises(ValueError, match="out of range"):
            graph.apply_delta(GraphDelta(add_edges=[[0, n]]))
        with pytest.raises(ValueError, match="features"):
            graph.apply_delta(GraphDelta(set_features={0: np.zeros(3)}))
        with pytest.raises(ValueError, match="zero-weight"):
            GraphDelta(add_edges=[[0, 1]], add_weights=0.0)
        with pytest.raises(ValueError, match="unknown mask"):
            GraphDelta(set_masks={"bogus": {0: True}})
        splitless = DirectedGraph(
            adjacency=graph.adjacency, features=graph.features, labels=graph.labels
        )
        with pytest.raises(ValueError, match="no such split"):
            splitless.apply_delta(GraphDelta(set_masks={"train": {0: True}}))

    def test_describe(self):
        delta = GraphDelta(add_edges=[[0, 1]], set_labels={2: 1})
        text = delta.describe()
        assert "+1 edges" in text and "1 labels" in text
        assert GraphDelta().describe() == "GraphDelta(empty)"


class TestNumClassesPin:
    def test_pin_survives_dropping_highest_class(self):
        graph = build_graph(seed=10)
        assert graph.num_classes == 4
        top_nodes = np.where(graph.labels == 3)[0]
        relabelled = graph.apply_delta(
            GraphDelta(set_labels={int(node): 0 for node in top_nodes})
        )
        assert int(relabelled.labels.max()) < 3
        assert relabelled.num_classes == 4
        assert relabelled.label_distribution().shape == (4,)
        assert relabelled.summary()["classes"] == 4

    def test_meta_override_and_growth(self):
        graph = build_graph(seed=12)
        wide = graph.with_(meta={**graph.meta, "num_classes": 9})
        assert wide.num_classes == 9
        assert wide.label_distribution().shape == (9,)
        # Labels above the pin still grow it (never understate).
        grown = wide.apply_delta(GraphDelta(set_labels={0: 11}))
        assert grown.num_classes == 12

    def test_pin_carried_by_transforms(self):
        graph = build_graph(seed=14)
        assert to_undirected(graph).num_classes == graph.num_classes
        component = largest_connected_component(graph)
        assert component.num_classes == graph.num_classes

    def test_pin_does_not_change_fingerprint(self):
        graph = build_graph(seed=16)
        pinned = graph.with_(meta={**graph.meta, "num_classes": 7})
        assert pinned.fingerprint() == graph.fingerprint()


class TestUpdatePreprocess:
    def test_sgc_incremental_bit_identical(self):
        rng = np.random.default_rng(21)
        graph = build_graph(seed=18, n=120)
        model = SGC(graph.num_features, graph.num_classes, num_steps=3)
        cache = model.preprocess(graph)
        for _ in range(12):
            delta = random_delta(rng, graph)
            mutated = graph.apply_delta(delta, validate=True)
            updated = model.update_preprocess(graph, mutated, delta, cache)
            assert updated is not None
            fresh = model.preprocess(mutated)
            assert np.array_equal(updated["x"].numpy(), fresh["x"].numpy())
            for incremental_step, full_step in zip(updated["steps"], fresh["steps"]):
                assert np.array_equal(incremental_step, full_step)
            graph, cache = mutated, updated

    def test_mlp_update_rebuilds_features(self):
        graph = build_graph(seed=20)
        model = MLPClassifier(graph.num_features, graph.num_classes)
        delta = GraphDelta(set_features={1: np.zeros(graph.num_features)})
        mutated = graph.apply_delta(delta)
        updated = model.update_preprocess(graph, mutated, delta, model.preprocess(graph))
        assert np.array_equal(updated["x"].numpy(), mutated.features)

    def test_base_default_is_fallback(self):
        from repro.adpa.model import ADPA

        graph = build_graph(seed=22)
        model = ADPA(graph.num_features, graph.num_classes, hidden=8, num_steps=2)
        cache = model.preprocess(graph)
        delta = GraphDelta(add_edges=[[0, 1]])
        assert model.update_preprocess(graph, graph.apply_delta(delta), delta, cache) is None
